//! The query planner: classify a tree join-aggregate query and dispatch
//! to the algorithm with the best known load bound.
//!
//! The single entry point is [`QueryEngine`], a builder that owns every
//! execution knob (server count, worker threads, tracing, plan choice)
//! and returns a [`Result`] instead of aborting on bad input:
//!
//! ```
//! use mpcjoin::prelude::*;
//!
//! let (a, b, c) = (Attr(0), Attr(1), Attr(2));
//! let q = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, c]);
//! let r1: Relation<Count> = Relation::binary_ones(a, b, [(1, 10)]);
//! let r2: Relation<Count> = Relation::binary_ones(b, c, [(10, 7)]);
//!
//! let result = QueryEngine::new(4).trace(true).run(&q, &[r1, r2]).unwrap();
//! assert_eq!(result.plan, PlanKind::MatMul);
//! let trace = result.trace.as_ref().unwrap();
//! assert_eq!(trace.cost, result.cost);
//! ```

use crate::audit::{AuditVerdict, BoundAuditor};
use mpcjoin_compiler as compiler;
use mpcjoin_joinagg::{line_query, star_like_query, star_query, tree_query};
use mpcjoin_matmul::matmul;
use mpcjoin_mpc::join::join_aggregate;
use mpcjoin_mpc::{
    Cluster, CostReport, DistRelation, FaultPlan, MetricsSnapshot, MpcError, RecoveryReport, Trace,
};
use mpcjoin_query::{classify, plan_reduction, Shape, TreeQuery};
use mpcjoin_relation::{Attr, Relation, Row, Schema};
use mpcjoin_semiring::Semiring;
use mpcjoin_yannakakis::{distributed_yannakakis, sequential_join_aggregate, validate_instance};
use std::fmt;

/// Which top-level plan the engine chose. Defined in the compiler crate
/// (the enumeration is the compiler's candidate space) and re-exported
/// here so engine users keep writing `mpcjoin::PlanKind`.
pub use mpcjoin_compiler::PlanKind;

/// How [`QueryEngine`] picks the algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PlanChoice {
    /// The default: cost-based selection (an alias of
    /// [`PlanChoice::CostBased`]). Enumerate every applicable strategy,
    /// price each with the shared Table-1 cost model
    /// (`mpcjoin_compiler`), and run the winner. Selection is hysteretic
    /// (see `mpcjoin_compiler::PREFERENCE_MARGIN`), so the structural
    /// pick runs unless an alternative is predicted decisively cheaper.
    #[default]
    Auto,
    /// Cost-based selection, spelled explicitly (what `Auto` does).
    CostBased,
    /// The pre-compiler dispatch: classify the query and run its shape's
    /// algorithm unconditionally, consulting no statistics.
    Heuristic,
    /// The distributed Yannakakis baseline (§1.4), regardless of shape.
    Baseline,
    /// Force a specific algorithm. [`QueryEngine::run`] returns
    /// [`MpcError::UnsupportedPlan`] if the query's shape does not admit
    /// it ([`PlanKind::Tree`], [`PlanKind::FreeConnexYannakakis`], and
    /// [`PlanKind::CanonicalEdgeCover`] accept every tree query).
    Force(PlanKind),
}

/// The canonical wire names accepted by [`parse_plan_choice`].
pub const PLAN_NAMES: &str =
    "auto|costbased|heuristic|baseline|yannakakis|matmul|line|star|starlike|tree|cec";

/// Map a plan name from the wire (CLI `--plan`, server `plan` field) to a
/// [`PlanChoice`]. Accepts [`PLAN_NAMES`]; anything else is
/// [`MpcError::UnknownPlan`].
pub fn parse_plan_choice(name: &str) -> Result<PlanChoice, MpcError> {
    Ok(match name {
        "auto" => PlanChoice::Auto,
        "costbased" => PlanChoice::CostBased,
        "heuristic" => PlanChoice::Heuristic,
        "baseline" => PlanChoice::Baseline,
        "yannakakis" => PlanChoice::Force(PlanKind::FreeConnexYannakakis),
        "matmul" => PlanChoice::Force(PlanKind::MatMul),
        "line" => PlanChoice::Force(PlanKind::Line),
        "star" => PlanChoice::Force(PlanKind::Star),
        "starlike" => PlanChoice::Force(PlanKind::StarLike),
        "tree" => PlanChoice::Force(PlanKind::Tree),
        "cec" => PlanChoice::Force(PlanKind::CanonicalEdgeCover),
        other => {
            return Err(MpcError::UnknownPlan(format!(
                "`{other}` (expected one of {PLAN_NAMES})"
            )))
        }
    })
}

/// Builder-style entry point for executing a join-aggregate query on the
/// simulated MPC cluster: one builder, every knob (server count, worker
/// threads, tracing, metrics, plan choice, fault injection), and a
/// `Result` at the boundary instead of a panic.
#[derive(Clone, Debug)]
pub struct QueryEngine {
    p: usize,
    threads: Option<usize>,
    trace: bool,
    metrics: bool,
    plan: PlanChoice,
    faults: Option<FaultPlan>,
}

impl QueryEngine {
    /// An engine over `p` simulated servers, serial local computation,
    /// tracing and metrics off, automatic plan choice, no fault plan.
    pub fn new(p: usize) -> Self {
        Self {
            p,
            threads: None,
            trace: false,
            metrics: false,
            plan: PlanChoice::Auto,
            faults: None,
        }
    }

    /// Use `n` worker threads for per-server local computation. Results
    /// and measured costs are identical for every thread count (see
    /// `mpcjoin_mpc::exec`); only wall-clock timings change.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Record a round-level execution trace; the run's
    /// [`ExecutionResult::trace`] is `Some` and ledger costs stay
    /// bit-identical to an untraced run.
    #[must_use]
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Collect aggregate metrics (see `mpcjoin_mpc::metrics`); the run's
    /// [`ExecutionResult::metrics`] is `Some` and — like tracing — the
    /// ledger costs stay bit-identical to an uninstrumented run.
    #[must_use]
    pub fn metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// Choose the plan: automatic dispatch, the baseline, or a forced
    /// algorithm.
    #[must_use]
    pub fn plan(mut self, choice: PlanChoice) -> Self {
        self.plan = choice;
        self
    }

    /// Inject a deterministic fault schedule (see `mpcjoin_mpc::fault`).
    /// The run recovers transparently — output, cost ledger, and per-phase
    /// loads stay bit-identical to the fault-free run; only wall-clock
    /// time absorbs the recovery work — and [`ExecutionResult::recovery`]
    /// carries the [`RecoveryReport`]. A schedule the retry policy cannot
    /// absorb surfaces as [`MpcError::Unrecoverable`], never a panic.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Place `instance` on a fresh cluster, execute `q`, and gather the
    /// output plus the measured cost (and trace, if enabled).
    ///
    /// Errors with [`MpcError::InvalidInstance`] when `instance` does not
    /// match the query's edges, [`MpcError::UnsupportedPlan`] when a
    /// forced plan does not apply to the query's shape, and
    /// [`MpcError::Unrecoverable`] when an injected fault schedule
    /// exhausts the retry policy (see [`QueryEngine::faults`]).
    pub fn run<S: Semiring>(
        &self,
        q: &TreeQuery,
        instance: &[Relation<S>],
    ) -> Result<ExecutionResult<S>, MpcError> {
        validate_instance(q, instance)?;
        let mut cluster = match self.threads {
            Some(n) => Cluster::with_threads(self.p, n),
            None => Cluster::new(self.p),
        };
        if self.trace {
            cluster.enable_tracing();
        }
        if self.metrics {
            cluster.enable_metrics();
        }
        if let Some(plan) = &self.faults {
            cluster.install_faults(plan.clone());
        }
        let dist: Vec<DistRelation<S>> = instance
            .iter()
            .map(|r| DistRelation::scatter(&cluster, r))
            .collect();
        let output: Vec<Attr> = q.output().iter().copied().collect();
        let (result, plan) = match self.plan {
            PlanChoice::Auto | PlanChoice::CostBased => {
                // Statistics are collected locally (no cluster, no
                // simulated load): planning never perturbs the ledger.
                let stats = compiler::Stats::collect(q, instance);
                let chosen = compiler::select_plan(q, &stats, self.p as u64);
                if chosen == compiler::heuristic_kind(q) {
                    // Same algorithm the structural dispatch would run —
                    // route through it so the execution (and its measured
                    // load) is bit-identical to the heuristic engine.
                    execute_on(&mut cluster, q, &dist)
                } else {
                    let picked = run_forced(&mut cluster, chosen, q, &dist)
                        .expect("enumerated plans apply to every tree query");
                    (normalize(picked, &output), chosen)
                }
            }
            PlanChoice::Heuristic => execute_on(&mut cluster, q, &dist),
            PlanChoice::Baseline => (
                normalize(distributed_yannakakis(&mut cluster, q, &dist), &output),
                PlanKind::FreeConnexYannakakis,
            ),
            PlanChoice::Force(kind) => {
                let forced = run_forced(&mut cluster, kind, q, &dist)?;
                (normalize(forced, &output), kind)
            }
        };
        let output_skew = result.data().skew();
        let output = result.gather();
        if let Some((round, detail)) = cluster.recovery_failed() {
            return Err(MpcError::Unrecoverable { round, detail });
        }
        let cost = cluster.report();
        // Audit the measured load against the bound of the plan that
        // actually ran (sizes from the original instance, OUT from the
        // actual output — the output-sensitive form of the theorems).
        let audit =
            BoundAuditor::new().audit(plan, q, instance, self.p, output.len() as u64, cost.load);
        // Trace first: the trace snapshots the plane's recovery events,
        // and `take_recovery` uninstalls the plane.
        let trace = cluster.take_trace();
        let recovery = cluster.take_recovery();
        Ok(ExecutionResult {
            output,
            cost,
            plan,
            output_skew,
            audit,
            trace,
            metrics: cluster.take_metrics(),
            recovery,
        })
    }

    /// Compile `q` for this engine's cluster size without executing it:
    /// collect local statistics, enumerate and price every applicable
    /// strategy with the shared Table-1 cost model, and lower the winner
    /// to the logical plan IR. The returned [`compiler::Explain`]
    /// serializes to the stable `mpcjoin-plan-v1` JSON document.
    ///
    /// Errors with [`MpcError::InvalidInstance`] exactly when
    /// [`QueryEngine::run`] would.
    pub fn explain<S: Semiring>(
        &self,
        q: &TreeQuery,
        instance: &[Relation<S>],
    ) -> Result<compiler::Explain, MpcError> {
        validate_instance(q, instance)?;
        let stats = compiler::Stats::collect(q, instance);
        Ok(compiler::explain(q, stats, self.p as u64))
    }
}

/// Run a specific algorithm, checking that the query's shape admits it.
fn run_forced<S: Semiring>(
    cluster: &mut Cluster,
    kind: PlanKind,
    q: &TreeQuery,
    rels: &[DistRelation<S>],
) -> Result<DistRelation<S>, MpcError> {
    let shape = classify(q);
    match (kind, shape) {
        (PlanKind::FreeConnexYannakakis, _) => Ok(distributed_yannakakis(cluster, q, rels)),
        (PlanKind::Tree, _) => Ok(tree_query(cluster, q, rels)),
        (PlanKind::MatMul, Shape::MatMul { r1, r2, .. }) => {
            Ok(matmul(cluster, &rels[r1], &rels[r2]).0)
        }
        (PlanKind::Line, Shape::Line { edges, attrs }) => {
            let chain: Vec<DistRelation<S>> = edges.iter().map(|&e| rels[e].clone()).collect();
            Ok(line_query(cluster, &chain, &attrs))
        }
        (PlanKind::Star, Shape::Star { center, arms }) => {
            let ordered: Vec<DistRelation<S>> = arms.iter().map(|&e| rels[e].clone()).collect();
            let endpoints: Vec<Attr> = arms.iter().map(|&e| q.edges()[e].other(center)).collect();
            Ok(star_query(cluster, &ordered, center, &endpoints))
        }
        (PlanKind::StarLike, Shape::StarLike(_)) => Ok(star_like_query(cluster, q, rels)),
        (PlanKind::CanonicalEdgeCover, _) => Ok(canonical_edge_cover_query(cluster, q, rels)),
        (kind, shape) => Err(MpcError::UnsupportedPlan(format!(
            "forced plan {kind:?} does not apply to this query (classified as {shape:?})"
        ))),
    }
}

/// Execute the canonical-edge-cover plan (Tao, 2201.03832, adapted to
/// the MPC setting): fold every non-cover relation into its cover
/// neighbour with the §7 reduce steps — the relations outside the
/// canonical edge cover are exactly the removable ones — then evaluate
/// the residual, whose leaves are all outputs, with the distributed
/// Yannakakis algorithm. Applies to every tree query.
fn canonical_edge_cover_query<S: Semiring>(
    cluster: &mut Cluster,
    q: &TreeQuery,
    rels: &[DistRelation<S>],
) -> DistRelation<S> {
    let output: Vec<Attr> = q.output().iter().copied().collect();
    if q.edges().len() == 1 {
        return rels[0].project_aggregate(cluster, &output);
    }

    cluster.mark_phase("cec: fold non-cover relations");
    let plan = plan_reduction(q);
    let mut working: Vec<Option<DistRelation<S>>> = rels.iter().cloned().map(Some).collect();
    for step in &plan.steps {
        let removed = working[step.removed].take().expect("fold source alive");
        let absorber = working[step.absorber].take().expect("fold target alive");
        let folded = removed.project_aggregate(cluster, &step.on);
        let keep: Vec<Attr> = absorber.schema().attrs().to_vec();
        working[step.absorber] = Some(join_aggregate(cluster, &absorber, &folded, &keep));
    }
    let kept_rels: Vec<DistRelation<S>> = plan
        .kept
        .iter()
        .map(|&i| working[i].take().expect("kept relation alive"))
        .collect();
    if plan.reduced.edges().len() == 1 {
        return kept_rels[0].project_aggregate(cluster, &output);
    }

    cluster.mark_phase("cec: Yannakakis on the cover residual");
    distributed_yannakakis(cluster, &plan.reduced, &kept_rels)
}

/// Result of executing a query on the simulated cluster.
pub struct ExecutionResult<S: Semiring> {
    /// The query output over `q.output()` (sorted attribute order).
    pub output: Relation<S>,
    /// Measured cost of the whole run: load, rounds, total traffic.
    pub cost: CostReport,
    /// The plan that was executed.
    pub plan: PlanKind,
    /// Placement skew of the distributed output before gathering
    /// (max / mean tuples per server; 1.0 is perfectly balanced).
    pub output_skew: f64,
    /// The measured load audited against the theoretical bound of the
    /// plan that ran (always present; see [`crate::audit`]).
    pub audit: AuditVerdict,
    /// The round-level execution trace, when the engine ran with
    /// [`QueryEngine::trace`] enabled.
    pub trace: Option<Trace>,
    /// The metrics snapshot, when the engine ran with
    /// [`QueryEngine::metrics`] enabled.
    pub metrics: Option<MetricsSnapshot>,
    /// What the fault plane did to this run, when the engine ran with a
    /// [`QueryEngine::faults`] plan installed (even one whose schedule
    /// never fired — then [`RecoveryReport::is_clean`] holds).
    pub recovery: Option<RecoveryReport>,
}

impl<S: Semiring> ExecutionResult<S> {
    /// Serialize the result's summary (plan, costs, skew, and the audit
    /// verdict — not the output tuples) as a JSON value
    /// (schema `mpcjoin-result-v1`).
    pub fn to_json(&self) -> mpcjoin_mpc::json::Json {
        use mpcjoin_mpc::json::Json;
        Json::Obj(vec![
            ("schema".into(), Json::Str("mpcjoin-result-v1".into())),
            ("plan".into(), Json::Str(format!("{:?}", self.plan))),
            ("load".into(), Json::Num(self.cost.load as f64)),
            ("rounds".into(), Json::Num(self.cost.rounds as f64)),
            (
                "total_units".into(),
                Json::Num(self.cost.total_units as f64),
            ),
            (
                "elapsed_ns".into(),
                Json::Num(self.cost.elapsed.as_nanos() as f64),
            ),
            ("output_rows".into(), Json::Num(self.output.len() as f64)),
            ("output_skew".into(), Json::Num(self.output_skew)),
            ("audit".into(), self.audit.to_json()),
            (
                "recovery".into(),
                self.recovery
                    .as_ref()
                    .map_or(Json::Null, RecoveryReport::to_json),
            ),
        ])
    }
}

impl<S: Semiring> fmt::Debug for ExecutionResult<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecutionResult")
            .field("plan", &self.plan)
            .field("cost", &self.cost)
            .field("output_rows", &self.output.len())
            .field("output_skew", &self.output_skew)
            .field("audit", &self.audit)
            .field("traced", &self.trace.is_some())
            .field("metered", &self.metrics.is_some())
            .field("recovery", &self.recovery)
            .finish()
    }
}

impl<S: Semiring> fmt::Display for ExecutionResult<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "plan: {:?}   load: {}   rounds: {}   traffic: {}   elapsed: {:.3?}   skew: {:.2}   output rows: {}   audit: {}",
            self.plan,
            self.cost.load,
            self.cost.rounds,
            self.cost.total_units,
            self.cost.elapsed,
            self.output_skew,
            self.output.len(),
            self.audit,
        )?;
        if let Some(r) = &self.recovery {
            write!(f, "   recovery: {r}")?;
        }
        Ok(())
    }
}

/// Evaluate `q` on an already-populated cluster; returns the distributed
/// output and the chosen plan. The cluster's cost ledger accumulates the
/// run's load.
pub fn execute_on<S: Semiring>(
    cluster: &mut Cluster,
    q: &TreeQuery,
    rels: &[DistRelation<S>],
) -> (DistRelation<S>, PlanKind) {
    let output: Vec<Attr> = q.output().iter().copied().collect();
    let (result, plan) = match classify(q) {
        Shape::FreeConnex => (
            distributed_yannakakis(cluster, q, rels),
            PlanKind::FreeConnexYannakakis,
        ),
        Shape::MatMul { r1, r2, .. } => {
            let (out, _) = matmul(cluster, &rels[r1], &rels[r2]);
            (out, PlanKind::MatMul)
        }
        Shape::Line { edges, attrs } => {
            let chain: Vec<DistRelation<S>> = edges.iter().map(|&e| rels[e].clone()).collect();
            (line_query(cluster, &chain, &attrs), PlanKind::Line)
        }
        Shape::Star { center, arms } => {
            let ordered: Vec<DistRelation<S>> = arms.iter().map(|&e| rels[e].clone()).collect();
            let endpoints: Vec<Attr> = arms.iter().map(|&e| q.edges()[e].other(center)).collect();
            (
                star_query(cluster, &ordered, center, &endpoints),
                PlanKind::Star,
            )
        }
        Shape::StarLike(_) => (star_like_query(cluster, q, rels), PlanKind::StarLike),
        Shape::Twig | Shape::General => (tree_query(cluster, q, rels), PlanKind::Tree),
    };
    (normalize(result, &output), plan)
}

/// Sequential reference evaluation (the oracle), projected onto the
/// query's outputs in sorted order.
pub fn execute_sequential<S: Semiring>(q: &TreeQuery, instance: &[Relation<S>]) -> Relation<S> {
    let output: Vec<Attr> = q.output().iter().copied().collect();
    sequential_join_aggregate(q, instance).project_aggregate(&output)
}

/// Reorder a result's columns to the canonical output order.
fn normalize<S: Semiring>(rel: DistRelation<S>, output: &[Attr]) -> DistRelation<S> {
    let target = Schema::new(output.to_vec());
    if rel.schema() == &target {
        return rel;
    }
    let pos = rel.schema().positions_of(output);
    let data = rel
        .data()
        .clone()
        .map(move |(row, s): (Row, S)| (pos.iter().map(|&i| row[i]).collect(), s));
    DistRelation::from_distributed(target, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_query::Edge;
    use mpcjoin_semiring::Count;

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);
    const D: Attr = Attr(3);

    fn mm_query() -> TreeQuery {
        TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C])
    }

    #[test]
    fn engine_matches_sequential_and_reports_plan() {
        let q = mm_query();
        let rels = vec![
            Relation::<Count>::binary_ones(A, B, (0..50u64).map(|i| (i % 10, i % 7))),
            Relation::<Count>::binary_ones(B, C, (0..50u64).map(|i| (i % 7, i % 12))),
        ];
        let result = QueryEngine::new(8).run(&q, &rels).unwrap();
        assert_eq!(result.plan, PlanKind::MatMul);
        assert!(result
            .output
            .semantically_eq(&execute_sequential(&q, &rels)));
        assert!(result.cost.rounds > 0);
        assert!(result.trace.is_none(), "tracing is off by default");
    }

    #[test]
    fn baseline_and_new_agree() {
        let q = TreeQuery::new(
            vec![Edge::binary(A, B), Edge::binary(B, C), Edge::binary(C, D)],
            [A, D],
        );
        let rels = vec![
            Relation::<Count>::binary_ones(A, B, (0..40u64).map(|i| (i % 8, i % 5))),
            Relation::<Count>::binary_ones(B, C, (0..40u64).map(|i| (i % 5, i % 6))),
            Relation::<Count>::binary_ones(C, D, (0..40u64).map(|i| (i % 6, i % 9))),
        ];
        let new = QueryEngine::new(8).run(&q, &rels).unwrap();
        let base = QueryEngine::new(8)
            .plan(PlanChoice::Baseline)
            .run(&q, &rels)
            .unwrap();
        assert_eq!(new.plan, PlanKind::Line);
        assert_eq!(base.plan, PlanKind::FreeConnexYannakakis);
        assert!(new.output.semantically_eq(&base.output));
    }

    #[test]
    fn free_connex_goes_to_yannakakis() {
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, B, C]);
        let rels = vec![
            Relation::<Count>::binary_ones(A, B, [(1, 2)]),
            Relation::<Count>::binary_ones(B, C, [(2, 3)]),
        ];
        let result = QueryEngine::new(4).run(&q, &rels).unwrap();
        assert_eq!(result.plan, PlanKind::FreeConnexYannakakis);
        assert_eq!(result.output.len(), 1);
    }

    #[test]
    fn star_plan_selected() {
        let q = TreeQuery::new(
            vec![Edge::binary(A, D), Edge::binary(B, D), Edge::binary(C, D)],
            [A, B, C],
        );
        let rels = vec![
            Relation::<Count>::binary_ones(A, D, (0..20u64).map(|i| (i % 6, i % 3))),
            Relation::<Count>::binary_ones(B, D, (0..20u64).map(|i| (i % 5, i % 3))),
            Relation::<Count>::binary_ones(C, D, (0..20u64).map(|i| (i % 4, i % 3))),
        ];
        let result = QueryEngine::new(8).run(&q, &rels).unwrap();
        assert_eq!(result.plan, PlanKind::Star);
        assert!(result
            .output
            .semantically_eq(&execute_sequential(&q, &rels)));
    }

    #[test]
    fn invalid_instance_is_an_error_not_a_panic() {
        let q = mm_query();
        let rels = vec![Relation::<Count>::binary_ones(A, B, [(1, 2)])];
        let err = QueryEngine::new(4).run(&q, &rels).unwrap_err();
        assert!(matches!(err, MpcError::InvalidInstance(_)));
        assert!(err.to_string().contains("one relation per edge"));
    }

    #[test]
    fn forced_plan_runs_or_errors_by_shape() {
        let q = mm_query();
        let rels = vec![
            Relation::<Count>::binary_ones(A, B, (0..30u64).map(|i| (i % 9, i % 4))),
            Relation::<Count>::binary_ones(B, C, (0..30u64).map(|i| (i % 4, i % 8))),
        ];
        let oracle = execute_sequential(&q, &rels);
        // Tree and the baseline apply to every tree query; MatMul matches
        // this shape; Star does not.
        for choice in [
            PlanKind::MatMul,
            PlanKind::Tree,
            PlanKind::FreeConnexYannakakis,
        ] {
            let r = QueryEngine::new(4)
                .plan(PlanChoice::Force(choice))
                .run(&q, &rels)
                .unwrap();
            assert_eq!(r.plan, choice);
            assert!(r.output.semantically_eq(&oracle), "plan {choice:?}");
        }
        let err = QueryEngine::new(4)
            .plan(PlanChoice::Force(PlanKind::Star))
            .run(&q, &rels)
            .unwrap_err();
        assert!(matches!(err, MpcError::UnsupportedPlan(_)));
    }

    #[test]
    fn traced_run_costs_match_untraced() {
        let q = mm_query();
        let rels = vec![
            Relation::<Count>::binary_ones(A, B, (0..60u64).map(|i| (i % 12, i % 7))),
            Relation::<Count>::binary_ones(B, C, (0..60u64).map(|i| (i % 7, i % 11))),
        ];
        let plain = QueryEngine::new(8).run(&q, &rels).unwrap();
        let traced = QueryEngine::new(8).trace(true).run(&q, &rels).unwrap();
        assert_eq!(plain.cost, traced.cost, "tracing must not perturb costs");
        let trace = traced.trace.expect("trace requested");
        assert_eq!(trace.cost, traced.cost);
        assert_eq!(trace.report().critical.unwrap().units, traced.cost.load);
    }

    #[test]
    fn every_run_yields_an_audit_verdict() {
        let q = mm_query();
        let rels = vec![
            Relation::<Count>::binary_ones(A, B, (0..50u64).map(|i| (i % 10, i % 7))),
            Relation::<Count>::binary_ones(B, C, (0..50u64).map(|i| (i % 7, i % 12))),
        ];
        for choice in [
            PlanChoice::Auto,
            PlanChoice::Baseline,
            PlanChoice::Force(PlanKind::Tree),
        ] {
            let r = QueryEngine::new(8).plan(choice).run(&q, &rels).unwrap();
            assert_eq!(r.audit.plan, r.plan, "{choice:?}");
            assert_eq!(r.audit.measured, r.cost.load, "{choice:?}");
            assert!(r.audit.bound > 0.0, "{choice:?}");
            assert!(r.audit.within, "{choice:?}: {}", r.audit);
            // The verdict is in the Display line and the JSON summary.
            assert!(r.to_string().contains("audit:"));
            let doc =
                mpcjoin_mpc::json::Json::parse(&r.to_json().to_string_compact().expect("finite"))
                    .unwrap();
            let audit = doc.get("audit").expect("audit member");
            assert_eq!(
                audit
                    .get("measured")
                    .and_then(mpcjoin_mpc::json::Json::as_u64),
                Some(r.cost.load)
            );
        }
    }

    #[test]
    fn metrics_are_off_by_default_and_invisible_when_on() {
        let q = mm_query();
        let rels = vec![
            Relation::<Count>::binary_ones(A, B, (0..60u64).map(|i| (i % 12, i % 7))),
            Relation::<Count>::binary_ones(B, C, (0..60u64).map(|i| (i % 7, i % 11))),
        ];
        let plain = QueryEngine::new(8).run(&q, &rels).unwrap();
        assert!(plain.metrics.is_none(), "metrics are off by default");
        let metered = QueryEngine::new(8).metrics(true).run(&q, &rels).unwrap();
        assert_eq!(plain.cost, metered.cost, "metrics must not perturb costs");
        let snap = metered.metrics.expect("metrics requested");
        assert_eq!(
            snap.per_server.iter().sum::<u64>(),
            metered.cost.total_units
        );
        assert_eq!(snap.received.max as u64 > 0, metered.cost.total_units > 0);
        assert!(
            snap.per_primitive.iter().any(|(k, _)| k.contains("sort")),
            "primitive labels recorded without tracing"
        );
        assert!(plain.output.semantically_eq(&metered.output));
    }

    #[test]
    fn faulted_run_recovers_bit_identically() {
        let q = mm_query();
        let rels = vec![
            Relation::<Count>::binary_ones(A, B, (0..60u64).map(|i| (i % 12, i % 7))),
            Relation::<Count>::binary_ones(B, C, (0..60u64).map(|i| (i % 7, i % 11))),
        ];
        let clean = QueryEngine::new(8).run(&q, &rels).unwrap();
        assert!(clean.recovery.is_none(), "no plan installed, no report");
        // Drop probability and retry budget are chosen so the schedule is
        // deterministically recoverable: each message survives with
        // failure probability 0.3^11 across ~56 messages per round.
        let plan = FaultPlan::new(11)
            .retries(10)
            .drop_window(0, 4, 0.3)
            .duplicate(2, 0.5)
            .reorder(1)
            .crash(3, 5);
        let faulted = QueryEngine::new(8).faults(plan).run(&q, &rels).unwrap();
        assert_eq!(clean.cost, faulted.cost, "recovery must not perturb costs");
        assert!(clean.output.semantically_eq(&faulted.output));
        let report = faulted.recovery.as_ref().expect("fault plan installed");
        assert!(report.recovered());
        assert_eq!(report.servers_lost, vec![5]);
        // The report rides along in the Display line and the JSON summary.
        assert!(faulted.to_string().contains("recovery:"));
        let doc =
            mpcjoin_mpc::json::Json::parse(&faulted.to_json().to_string_compact().expect("finite"))
                .unwrap();
        let rec = doc.get("recovery").expect("recovery member");
        assert_eq!(
            rec.get("schema").and_then(mpcjoin_mpc::json::Json::as_str),
            Some("mpcjoin-recovery-v1")
        );
    }

    #[test]
    fn unrecoverable_schedule_is_an_error_not_a_panic() {
        let q = mm_query();
        let rels = vec![
            Relation::<Count>::binary_ones(A, B, (0..40u64).map(|i| (i % 8, i % 5))),
            Relation::<Count>::binary_ones(B, C, (0..40u64).map(|i| (i % 5, i % 6))),
        ];
        let plan = FaultPlan::new(7).retries(1).drop_window(0, u64::MAX, 1.0);
        let err = QueryEngine::new(4).faults(plan).run(&q, &rels).unwrap_err();
        assert!(matches!(err, MpcError::Unrecoverable { .. }), "{err}");
        assert!(err.to_string().contains("unrecoverable"));
    }
}

//! Cross-checking utilities: run a query three ways (sequential oracle,
//! the paper's algorithm, the Yannakakis baseline) and compare exactly.
//!
//! Useful when developing new algorithm variants or custom [`Semiring`]
//! instances — the same machinery drives this repository's differential
//! soak tester (`cargo run -p mpcjoin-bench --bin differential`).

use crate::planner::{execute_sequential, PlanChoice, PlanKind, QueryEngine};
use mpcjoin_mpc::CostReport;
use mpcjoin_query::TreeQuery;
use mpcjoin_relation::Relation;
use mpcjoin_semiring::Semiring;

/// Outcome of a three-way differential run.
pub struct Verification<S: Semiring> {
    /// The plan the engine chose.
    pub plan: PlanKind,
    /// Whether the engine's output equals the sequential oracle's,
    /// as annotated relations.
    pub engine_matches_oracle: bool,
    /// Whether the baseline's output equals the oracle's.
    pub baseline_matches_oracle: bool,
    /// The oracle's output (ground truth).
    pub oracle: Relation<S>,
    /// Measured cost of the engine run.
    pub engine_cost: CostReport,
    /// Measured cost of the baseline run.
    pub baseline_cost: CostReport,
}

impl<S: Semiring> Verification<S> {
    /// All three evaluations agree.
    pub fn all_agree(&self) -> bool {
        self.engine_matches_oracle && self.baseline_matches_oracle
    }
}

/// Evaluate `q` over `instance` with the sequential oracle, the planner's
/// algorithm, and the distributed Yannakakis baseline on a fresh
/// `p`-server cluster each, comparing annotated outputs exactly.
pub fn verify_instance<S: Semiring>(
    p: usize,
    q: &TreeQuery,
    instance: &[Relation<S>],
) -> Verification<S> {
    let oracle = execute_sequential(q, instance);
    let engine = QueryEngine::new(p)
        .run(q, instance)
        .unwrap_or_else(|e| panic!("{e}"));
    let baseline = QueryEngine::new(p)
        .plan(PlanChoice::Baseline)
        .run(q, instance)
        .unwrap_or_else(|e| panic!("{e}"));
    Verification {
        plan: engine.plan,
        engine_matches_oracle: engine.output.semantically_eq(&oracle),
        baseline_matches_oracle: baseline.output.semantically_eq(&oracle),
        oracle,
        engine_cost: engine.cost,
        baseline_cost: baseline.cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_query::Edge;
    use mpcjoin_relation::Attr;
    use mpcjoin_semiring::Count;

    #[test]
    fn three_way_agreement() {
        let (a, b, c) = (Attr(0), Attr(1), Attr(2));
        let q = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, c]);
        let rels = vec![
            Relation::<Count>::binary_ones(a, b, (0..30u64).map(|i| (i % 6, i % 5))),
            Relation::<Count>::binary_ones(b, c, (0..30u64).map(|i| (i % 5, i % 7))),
        ];
        let v = verify_instance(8, &q, &rels);
        assert!(v.all_agree());
        assert_eq!(v.plan, PlanKind::MatMul);
        assert!(!v.oracle.is_empty());
        assert!(v.engine_cost.rounds > 0 && v.baseline_cost.rounds > 0);
    }
}

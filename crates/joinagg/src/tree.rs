//! General tree join-aggregate queries (§7): load
//! `O(N·OUT^{2/3}/p + (N+OUT)/p)` (Theorem 6).
//!
//! Pipeline:
//!
//! 1. *Reduce* — fold away unary relations and private non-output
//!    attributes so every leaf is an output attribute (Figure 2, middle).
//! 2. *Twig decomposition* — break at non-leaf output attributes
//!    (Figure 2, right); each twig has its output attributes exactly at
//!    its leaves and is evaluated independently by the most specific
//!    algorithm (free-connex Yannakakis / §3 / §4 / §5 / §6 / §7.1).
//! 3. *Twig combination* — all surviving attributes are outputs, so the
//!    twig results join free-connex-style with `O(OUT/p)` load.
//!
//! General twigs (§7.1) use the skeleton machinery (Figure 3): per
//! contracted star-like part `T_B`, `x(b)` estimates the output
//! combinations inside `T_B` and `y(b)` — computed by `EstimateOutTree`
//! (Algorithm 1), a max/product propagation over the skeleton — lower
//! bounds the combinations outside it. Classifying each `b` as heavy
//! (`x > y`) or light splits the twig into `2^{|S∩ȳ|}` subqueries
//! (Figure 4); every subquery has a light attribute (Lemma 13) whose
//! `T_B` materializes into a single relation `R(B, V_B∩y)` of size
//! `≤ N·√OUT` (Lemma 15), and the shrunken query recurses.

use crate::common::{combine_columns, expand_column, fresh_attr, union_aggregate};
use crate::line::{line_query, reorder_binary};
use crate::star::star_query;
use crate::starlike::star_like_query;
use mpcjoin_matmul::matmul;
use mpcjoin_mpc::join::{full_join, join_aggregate};
use mpcjoin_mpc::primitives::reduce::reduce_by_key;
use mpcjoin_mpc::{Cluster, DistRelation, Distributed};
use mpcjoin_query::{
    classify, decompose_twigs, plan_reduction, skeleton, Arm, ContractedPart, Edge, Shape,
    Skeleton, TreeQuery,
};
use mpcjoin_relation::{Attr, Row, Schema, Value};
use mpcjoin_semiring::Semiring;
use mpcjoin_sketch::estimate_out_chain_default;
use mpcjoin_yannakakis::{distributed_yannakakis, remove_dangling};

/// Evaluate an arbitrary tree join-aggregate query. `rels[e]` is the
/// relation of edge `e`. Output schema: `q.output()` in sorted order.
pub fn tree_query<S: Semiring>(
    cluster: &mut Cluster,
    q: &TreeQuery,
    rels: &[DistRelation<S>],
) -> DistRelation<S> {
    let output: Vec<Attr> = q.output().iter().copied().collect();
    let out_schema = Schema::new(output.clone());

    // Trivial: one relation.
    if q.edges().len() == 1 {
        return rels[0].project_aggregate(cluster, &output);
    }

    cluster.mark_phase("tree: dangling removal");
    let reduced_input = remove_dangling(cluster, q, rels);
    if reduced_input.iter().any(DistRelation::is_empty) {
        return DistRelation::empty(cluster, out_schema);
    }

    // --- Reduce: fold removable relations into neighbours. ---
    cluster.mark_phase("tree: fold removable relations");
    let plan = plan_reduction(q);
    let mut working: Vec<Option<DistRelation<S>>> = reduced_input.into_iter().map(Some).collect();
    for step in &plan.steps {
        let removed = working[step.removed].take().expect("fold source alive");
        let absorber = working[step.absorber].take().expect("fold target alive");
        let folded = removed.project_aggregate(cluster, &step.on);
        let keep: Vec<Attr> = absorber.schema().attrs().to_vec();
        working[step.absorber] = Some(join_aggregate(cluster, &absorber, &folded, &keep));
    }
    let kept_rels: Vec<DistRelation<S>> = plan
        .kept
        .iter()
        .map(|&i| working[i].take().expect("kept relation alive"))
        .collect();
    let rq = &plan.reduced;
    if rq.edges().len() == 1 {
        return kept_rels[0].project_aggregate(cluster, &output);
    }
    let rq = rq.with_output(output.iter().copied().filter(|a| rq.attrs().contains(a)));

    // --- Twig decomposition and per-twig evaluation. ---
    cluster.mark_phase("tree: per-twig evaluation");
    let twigs = decompose_twigs(&rq);
    let mut results: Vec<DistRelation<S>> = Vec::with_capacity(twigs.len());
    for twig in &twigs {
        let twig_rels: Vec<DistRelation<S>> = twig
            .parent_edges
            .iter()
            .map(|&e| kept_rels[e].clone())
            .collect();
        results.push(execute_twig(cluster, &twig.query, &twig_rels));
    }

    // --- Combine twigs: everything left is an output attribute. ---
    cluster.mark_phase("tree: combine twigs");
    let mut acc = results.swap_remove(0);
    while !results.is_empty() {
        if acc.is_empty() {
            return DistRelation::empty(cluster, out_schema);
        }
        // Pick any remaining twig sharing an attribute with `acc`.
        let idx = results
            .iter()
            .position(|r| !acc.schema().common(r.schema()).is_empty())
            .expect("twigs form a connected tree");
        let next = results.swap_remove(idx);
        acc = full_join(cluster, &acc, &next);
    }
    acc.project_aggregate(cluster, &output)
}

/// Evaluate one twig by the most specific applicable algorithm.
fn execute_twig<S: Semiring>(
    cluster: &mut Cluster,
    q: &TreeQuery,
    rels: &[DistRelation<S>],
) -> DistRelation<S> {
    let output: Vec<Attr> = q.output().iter().copied().collect();
    match classify(q) {
        Shape::FreeConnex => distributed_yannakakis(cluster, q, rels),
        Shape::MatMul { r1, r2, a, c, .. } => {
            let (out, _) = matmul(cluster, &rels[r1], &rels[r2]);
            reorder_binary(out, &Schema::binary(a.min(c), a.max(c)))
        }
        Shape::Line { edges, attrs } => {
            let chain: Vec<DistRelation<S>> = edges.iter().map(|&e| rels[e].clone()).collect();
            line_query(cluster, &chain, &attrs)
        }
        Shape::Star { center, arms } => {
            let ordered: Vec<DistRelation<S>> = arms.iter().map(|&e| rels[e].clone()).collect();
            let endpoints: Vec<Attr> = arms.iter().map(|&e| q.edges()[e].other(center)).collect();
            star_query(cluster, &ordered, center, &endpoints)
        }
        Shape::StarLike(_) => star_like_query(cluster, q, rels),
        Shape::Twig => general_twig(cluster, q, rels),
        Shape::General => {
            // A twig should never classify as General; recurse through the
            // full pipeline defensively.
            tree_query(cluster, q, rels)
        }
    }
    .project_aggregate(cluster, &output)
}

/// §7.1: a general twig (two or more high-degree attributes).
fn general_twig<S: Semiring>(
    cluster: &mut Cluster,
    q: &TreeQuery,
    rels: &[DistRelation<S>],
) -> DistRelation<S> {
    let output: Vec<Attr> = q.output().iter().copied().collect();
    let out_schema = Schema::new(output.clone());
    let sk = skeleton(q).expect("general twig has |V*| ≥ 2");
    let roots: Vec<Attr> = sk.contracted.iter().map(|c| c.b).collect();

    cluster.mark_phase("twig: dangling removal");
    let reduced = remove_dangling(cluster, q, rels);
    if reduced.iter().any(DistRelation::is_empty) {
        return DistRelation::empty(cluster, out_schema);
    }

    // --- Step 1: x(b) per contracted part, y(b) per root (Algorithm 1).
    cluster.mark_phase("twig: Algorithm-1 statistics");
    let mut x_stats: Vec<Distributed<(Value, u64)>> = Vec::new();
    for part in &sk.contracted {
        x_stats.push(arm_product_stats(cluster, part, &reduced));
    }
    let mut heavy_flags: Vec<Distributed<(Value, bool)>> = Vec::new();
    for (i, part) in sk.contracted.iter().enumerate() {
        let y_stats = estimate_out_tree(cluster, q, &sk, &reduced, part.b, &roots, &x_stats, i);
        // heavy iff x(b) > y(b); merge the two stat tables.
        let merged = reduce_by_key(
            cluster,
            merge_tagged(cluster.p(), &x_stats[i], &y_stats),
            |acc: &mut (u64, u64), v| {
                acc.0 = acc.0.max(v.0);
                acc.1 = acc.1.max(v.1);
            },
        );
        heavy_flags.push(merged.map(|(b, (x, y))| (b, x > y)));
    }

    // Flag catalogs per root, for per-pattern tuple filtering.
    let flag_catalogs: Vec<Distributed<(Row, bool)>> = heavy_flags
        .iter()
        .map(|f| f.clone().map(|(b, h)| (vec![b], h)))
        .collect();

    // --- Step 2: one subquery per heavy/light pattern over the roots. ---
    cluster.mark_phase("twig: per-pattern subqueries");
    let m = roots.len();
    let mut fragments = Vec::new();
    for pattern in 0..(1u32 << m) {
        let is_heavy = |i: usize| pattern & (1 << i) != 0;

        // Restrict every root-incident relation to the pattern's class.
        // Filters for different roots compose (a skeleton edge between two
        // roots is filtered on both of its endpoints).
        let mut sub_rels: Vec<DistRelation<S>> = reduced.to_vec();
        for (i, part) in sk.contracted.iter().enumerate() {
            let want = is_heavy(i);
            for e in 0..q.edges().len() {
                if !q.edges()[e].contains(part.b) {
                    continue;
                }
                let attached =
                    sub_rels[e].attach_stat(cluster, &[part.b], flag_catalogs[i].clone());
                let data = attached.par_map_local(cluster, |_, items| {
                    items
                        .into_iter()
                        .filter_map(|(entry, h)| (h.unwrap_or(false) == want).then_some(entry))
                        .collect::<Vec<_>>()
                });
                sub_rels[e] = DistRelation::from_distributed(reduced[e].schema().clone(), data);
            }
        }
        let sub_rels = remove_dangling(cluster, q, &sub_rels);
        if sub_rels.iter().any(DistRelation::is_empty) {
            continue;
        }

        // Lemma 13 guarantees a light root; with approximate statistics
        // the all-heavy pattern may nevertheless be non-empty, so we force
        // one root light (treating a root as light is always correct —
        // the classification only drives the cost analysis).
        let mut light: Vec<usize> = (0..m).filter(|&i| !is_heavy(i)).collect();
        if light.is_empty() {
            light.push(0);
        }
        // Materialize Q_B for each light root and build the residual query.
        let mut residual_edges: Vec<Edge> = Vec::new();
        let mut residual_rels: Vec<DistRelation<S>> = Vec::new();
        let mut residual_out: Vec<Attr> = Vec::new();
        let mut decodes: Vec<(Attr, Vec<Attr>, Distributed<(Value, Row)>)> = Vec::new();
        let mut swallowed: Vec<usize> = Vec::new();
        let mut next_code = fresh_attr(q.attrs());

        for &i in &light {
            let part = &sk.contracted[i];
            let Some(qb) = materialize_part(cluster, part, &sub_rels) else {
                continue;
            };
            let cols: Vec<Attr> = part.shape.arms.iter().map(Arm::endpoint).collect();
            let code = next_code;
            next_code = Attr(next_code.0 + 1);
            let combined = combine_columns(cluster, &qb, &cols, code);
            residual_edges.push(Edge::binary(part.b, code));
            // combined.relation schema is (code, B): reorder to (B, code).
            residual_rels.push(reorder_binary(
                combined.relation,
                &Schema::binary(part.b, code),
            ));
            residual_out.push(code);
            decodes.push((code, cols, combined.decode));
            swallowed.extend(part.edges.iter().copied());
        }
        if decodes.is_empty() {
            continue;
        }

        for (e, (edge, rel)) in q.edges().iter().zip(&sub_rels).enumerate() {
            if swallowed.contains(&e) {
                continue;
            }
            residual_edges.push(edge.clone());
            residual_rels.push(rel.clone());
        }
        let residual_attrs: std::collections::BTreeSet<Attr> = residual_edges
            .iter()
            .flat_map(|e| e.attrs().iter().copied())
            .collect();
        residual_out.extend(
            output
                .iter()
                .copied()
                .filter(|a| residual_attrs.contains(a)),
        );
        let residual_q = TreeQuery::new(residual_edges, residual_out);

        // Recurse on the strictly smaller query.
        let sub_out = tree_query(cluster, &residual_q, &residual_rels);
        if sub_out.is_empty() {
            continue;
        }
        // Expand the combined columns back to the original outputs.
        let mut expanded = sub_out;
        for (code, cols, decode) in decodes {
            expanded = expand_column(cluster, &expanded, code, &cols, decode);
        }
        fragments.push(expanded);
    }

    union_aggregate(cluster, out_schema, fragments)
}

/// `x(b) = ∏_{arms} d_arm(b)`: per-root output combinations inside `T_B`
/// (exact degrees for single-relation arms, §2.2 estimates otherwise).
fn arm_product_stats<S: Semiring>(
    cluster: &mut Cluster,
    part: &ContractedPart,
    rels: &[DistRelation<S>],
) -> Distributed<(Value, u64)> {
    let p = cluster.p();
    let mut parts: Vec<Vec<(Value, u64)>> = vec![Vec::new(); p];
    for arm in &part.shape.arms {
        let stats = if arm.len() == 1 {
            rels[arm.edges[0]].degrees(cluster, part.b)
        } else {
            let chain: Vec<&DistRelation<S>> = arm.edges.iter().map(|&e| &rels[e]).collect();
            estimate_out_chain_default(cluster, &chain, &arm.attrs).per_group
        };
        for (server, local) in stats.into_parts().into_iter().enumerate() {
            parts[server].extend(local.into_iter().map(|(b, d)| (b, d.max(1))));
        }
    }
    reduce_by_key(cluster, Distributed::from_parts(parts), |acc, v| {
        *acc = acc.saturating_mul(v)
    })
}

/// Algorithm 1 (`EstimateOutTree`): propagate `y`-underestimates over the
/// skeleton toward `root`, multiplying per-child maxima.
#[allow(clippy::too_many_arguments)]
fn estimate_out_tree<S: Semiring>(
    cluster: &mut Cluster,
    q: &TreeQuery,
    sk: &Skeleton,
    rels: &[DistRelation<S>],
    root: Attr,
    roots: &[Attr],
    x_stats: &[Distributed<(Value, u64)>],
    skip_root_index: usize,
) -> Distributed<(Value, u64)> {
    use std::collections::{HashMap, VecDeque};

    // Adjacency over skeleton edges.
    let mut adj: HashMap<Attr, Vec<(Attr, usize)>> = HashMap::new();
    for &e in &sk.skeleton_edges {
        let attrs = q.edges()[e].attrs();
        adj.entry(attrs[0]).or_default().push((attrs[1], e));
        adj.entry(attrs[1]).or_default().push((attrs[0], e));
    }

    // BFS from the root for parents and processing order.
    let mut parent: HashMap<Attr, Attr> = HashMap::new();
    let mut order = vec![root];
    let mut queue = VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        for &(u, _) in adj.get(&v).map(Vec::as_slice).unwrap_or(&[]) {
            if u != root && !parent.contains_key(&u) {
                parent.insert(u, v);
                order.push(u);
                queue.push_back(u);
            }
        }
    }

    // Bottom-up propagation. `None` stands for the all-ones table.
    let mut y: HashMap<Attr, Option<Distributed<(Value, u64)>>> = HashMap::new();
    for &c_attr in order.iter().rev() {
        let children: Vec<(Attr, usize)> = adj
            .get(&c_attr)
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .copied()
            .filter(|(u, _)| parent.get(u) == Some(&c_attr))
            .collect();
        if children.is_empty() {
            // Leaf: another contracted root carries x(b'); output leaves
            // carry 1.
            let stats = roots
                .iter()
                .position(|&r| r == c_attr)
                .filter(|&i| i != skip_root_index)
                .map(|i| x_stats[i].clone());
            y.insert(c_attr, stats);
            continue;
        }
        let mut factors: Vec<Distributed<(Value, u64)>> = Vec::new();
        for (child, edge) in children {
            let Some(Some(child_stats)) = y.remove(&child) else {
                continue;
            };
            // m(c) = max over child values joining c.
            let catalog = child_stats.map(|(v, yv)| (vec![v], yv));
            let attached = rels[edge].attach_stat(cluster, &[child], catalog);
            let c_pos = rels[edge].schema().positions_of(&[c_attr])[0];
            let pairs = attached.par_map_local(cluster, |_, items| {
                items
                    .into_iter()
                    .filter_map(|((row, _), yv)| yv.map(|yv| (row[c_pos], yv)))
                    .collect::<Vec<_>>()
            });
            factors.push(reduce_by_key(cluster, pairs, |acc, v| *acc = (*acc).max(v)));
        }
        if factors.is_empty() {
            y.insert(c_attr, None);
            continue;
        }
        let p = cluster.p();
        let mut parts: Vec<Vec<(Value, u64)>> = vec![Vec::new(); p];
        for f in factors {
            for (server, local) in f.into_parts().into_iter().enumerate() {
                parts[server].extend(local);
            }
        }
        let combined = reduce_by_key(cluster, Distributed::from_parts(parts), |acc, v| {
            *acc = acc.saturating_mul(v)
        });
        y.insert(c_attr, Some(combined));
    }

    y.remove(&root)
        .flatten()
        .unwrap_or_else(|| Distributed::empty(cluster.p()))
}

/// Merge two stat tables into tagged pairs for a component-wise reduce.
fn merge_tagged(
    p: usize,
    xs: &Distributed<(Value, u64)>,
    ys: &Distributed<(Value, u64)>,
) -> Distributed<(Value, (u64, u64))> {
    let mut parts: Vec<Vec<(Value, (u64, u64))>> = vec![Vec::new(); p];
    for (i, local) in xs.iter() {
        parts[i].extend(local.iter().map(|&(b, x)| (b, (x, 0))));
    }
    for (i, local) in ys.iter() {
        parts[i].extend(local.iter().map(|&(b, y)| (b, (0, y))));
    }
    Distributed::from_parts(parts)
}

/// Materialize `Q_B = R(B, V_B ∩ y)`: shrink each arm of `T_B` to
/// `R(endpoint, B)` and join the arms on `B`. Returns `None` when empty.
fn materialize_part<S: Semiring>(
    cluster: &mut Cluster,
    part: &ContractedPart,
    rels: &[DistRelation<S>],
) -> Option<DistRelation<S>> {
    let b = part.b;
    let mut acc: Option<DistRelation<S>> = None;
    for arm in &part.shape.arms {
        let endpoint = arm.endpoint();
        let h = arm.len();
        let mut shrunk = rels[arm.edges[h - 1]].clone();
        for k in (0..h - 1).rev() {
            shrunk = join_aggregate(
                cluster,
                &shrunk,
                &rels[arm.edges[k]],
                &[endpoint, arm.attrs[k]],
            );
        }
        let shrunk = reorder_binary(shrunk, &Schema::binary(b, endpoint));
        acc = Some(match acc {
            None => shrunk,
            Some(a) => full_join(cluster, &a, &shrunk),
        });
        if acc.as_ref().is_some_and(DistRelation::is_empty) {
            return None;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_relation::Relation;
    use mpcjoin_semiring::{Count, XorRing};
    use mpcjoin_yannakakis::sequential_join_aggregate;

    fn check<SR: Semiring>(q: &TreeQuery, rels: Vec<Relation<SR>>, p: usize) -> Cluster {
        let expect = sequential_join_aggregate(q, &rels);
        let out: Vec<Attr> = q.output().iter().copied().collect();
        let expect = expect.project_aggregate(&out);
        let mut cluster = Cluster::new(p);
        let dist: Vec<DistRelation<SR>> = rels
            .iter()
            .map(|r| DistRelation::scatter(&cluster, r))
            .collect();
        let got = tree_query(&mut cluster, q, &dist);
        assert!(
            got.gather().semantically_eq(&expect),
            "tree query diverged from oracle"
        );
        cluster
    }

    /// The minimal general twig: B1 — B2, two output leaves each
    /// (Figure 3's core shape).
    fn two_center_twig() -> TreeQuery {
        let (b1, b2) = (Attr(10), Attr(11));
        TreeQuery::new(
            vec![
                Edge::binary(b1, Attr(0)),
                Edge::binary(b1, Attr(1)),
                Edge::binary(b1, b2),
                Edge::binary(b2, Attr(2)),
                Edge::binary(b2, Attr(3)),
            ],
            [Attr(0), Attr(1), Attr(2), Attr(3)],
        )
    }

    #[test]
    fn minimal_general_twig() {
        let q = two_center_twig();
        let rels = vec![
            Relation::<Count>::binary_ones(Attr(10), Attr(0), (0..20u64).map(|i| (i % 3, i % 5))),
            Relation::<Count>::binary_ones(Attr(10), Attr(1), (0..20u64).map(|i| (i % 3, i % 4))),
            Relation::<Count>::binary_ones(Attr(10), Attr(11), (0..9u64).map(|i| (i % 3, i % 3))),
            Relation::<Count>::binary_ones(Attr(11), Attr(2), (0..20u64).map(|i| (i % 3, i % 6))),
            Relation::<Count>::binary_ones(Attr(11), Attr(3), (0..20u64).map(|i| (i % 3, i % 2))),
        ];
        check::<Count>(&q, rels, 8);
    }

    #[test]
    fn two_center_twig_skewed_sides() {
        let q = two_center_twig();
        // b1-side combinations huge for b=0 (heavy), tiny for b=1.
        let mut r0 = Vec::new();
        let mut r1 = Vec::new();
        for a in 0..12u64 {
            r0.push((0u64, a));
            r1.push((0u64, a));
        }
        r0.push((1, 100));
        r1.push((1, 100));
        let rels = vec![
            Relation::<Count>::binary_ones(Attr(10), Attr(0), r0),
            Relation::<Count>::binary_ones(Attr(10), Attr(1), r1),
            Relation::<Count>::binary_ones(Attr(10), Attr(11), [(0, 0), (1, 1)]),
            Relation::<Count>::binary_ones(Attr(11), Attr(2), [(0, 7), (1, 8), (1, 9)]),
            Relation::<Count>::binary_ones(Attr(11), Attr(3), [(0, 3), (0, 4), (1, 5)]),
        ];
        check::<Count>(&q, rels, 8);
    }

    #[test]
    fn figure_2_like_full_tree() {
        // A tree mixing twig kinds: all-output relation, a matmul twig,
        // and a star-like twig, plus a foldable non-output tail.
        let q = TreeQuery::new(
            vec![
                Edge::binary(Attr(0), Attr(1)),  // all-output
                Edge::binary(Attr(1), Attr(20)), // matmul via m=20
                Edge::binary(Attr(20), Attr(2)),
                Edge::binary(Attr(2), Attr(21)), // star-like at 21
                Edge::binary(Attr(21), Attr(3)),
                Edge::binary(Attr(21), Attr(4)),
                Edge::binary(Attr(4), Attr(22)), // foldable tail (22 non-output leaf)
            ],
            [Attr(0), Attr(1), Attr(2), Attr(3), Attr(4)],
        );
        let rels = vec![
            Relation::<Count>::binary_ones(Attr(0), Attr(1), (0..15u64).map(|i| (i % 5, i % 3))),
            Relation::<Count>::binary_ones(Attr(1), Attr(20), (0..15u64).map(|i| (i % 3, i % 4))),
            Relation::<Count>::binary_ones(Attr(20), Attr(2), (0..15u64).map(|i| (i % 4, i % 5))),
            Relation::<Count>::binary_ones(Attr(2), Attr(21), (0..15u64).map(|i| (i % 5, i % 2))),
            Relation::<Count>::binary_ones(Attr(21), Attr(3), (0..15u64).map(|i| (i % 2, i % 6))),
            Relation::<Count>::binary_ones(Attr(21), Attr(4), (0..15u64).map(|i| (i % 2, i % 4))),
            Relation::<Count>::binary_ones(Attr(4), Attr(22), (0..15u64).map(|i| (i % 4, i % 7))),
        ];
        check::<Count>(&q, rels, 8);
    }

    #[test]
    fn xor_general_twig() {
        let q = two_center_twig();
        let rels = vec![
            Relation::<XorRing>::binary_ones(Attr(10), Attr(0), (0..14u64).map(|i| (i % 2, i % 5))),
            Relation::<XorRing>::binary_ones(Attr(10), Attr(1), (0..14u64).map(|i| (i % 2, i % 3))),
            Relation::<XorRing>::binary_ones(Attr(10), Attr(11), [(0, 0), (0, 1), (1, 1)]),
            Relation::<XorRing>::binary_ones(Attr(11), Attr(2), (0..14u64).map(|i| (i % 2, i % 4))),
            Relation::<XorRing>::binary_ones(Attr(11), Attr(3), (0..14u64).map(|i| (i % 2, i % 6))),
        ];
        check::<XorRing>(&q, rels, 4);
    }

    #[test]
    fn three_center_chain_twig() {
        // B1 — B2 — B3, each with two output leaves: recursion must fire
        // at least twice.
        let (b1, b2, b3) = (Attr(10), Attr(11), Attr(12));
        let q = TreeQuery::new(
            vec![
                Edge::binary(b1, Attr(0)),
                Edge::binary(b1, Attr(1)),
                Edge::binary(b1, b2),
                Edge::binary(b2, Attr(2)),
                Edge::binary(b2, b3),
                Edge::binary(b3, Attr(3)),
                Edge::binary(b3, Attr(4)),
            ],
            [Attr(0), Attr(1), Attr(2), Attr(3), Attr(4)],
        );
        let rels = vec![
            Relation::<Count>::binary_ones(b1, Attr(0), (0..8u64).map(|i| (i % 2, i % 4))),
            Relation::<Count>::binary_ones(b1, Attr(1), (0..8u64).map(|i| (i % 2, i % 3))),
            Relation::<Count>::binary_ones(b1, b2, [(0, 0), (1, 1), (1, 0)]),
            Relation::<Count>::binary_ones(b2, Attr(2), (0..8u64).map(|i| (i % 2, i % 5))),
            Relation::<Count>::binary_ones(b2, b3, [(0, 0), (1, 1)]),
            Relation::<Count>::binary_ones(b3, Attr(3), (0..8u64).map(|i| (i % 2, i % 3))),
            Relation::<Count>::binary_ones(b3, Attr(4), (0..8u64).map(|i| (i % 2, i % 2))),
        ];
        check::<Count>(&q, rels, 8);
    }

    #[test]
    fn twig_with_long_arms_on_centers() {
        // Each center's star-like part has a two-hop arm: materializing
        // Q_B must shrink through the interior attribute.
        let (b1, b2) = (Attr(10), Attr(11));
        let (m1, m2) = (Attr(20), Attr(21));
        let q = TreeQuery::new(
            vec![
                Edge::binary(b1, m1),
                Edge::binary(m1, Attr(0)),
                Edge::binary(b1, Attr(1)),
                Edge::binary(b1, b2),
                Edge::binary(b2, m2),
                Edge::binary(m2, Attr(2)),
                Edge::binary(b2, Attr(3)),
            ],
            [Attr(0), Attr(1), Attr(2), Attr(3)],
        );
        let rels = vec![
            Relation::<Count>::binary_ones(b1, m1, (0..8u64).map(|i| (i % 2, i % 3))),
            Relation::<Count>::binary_ones(m1, Attr(0), (0..9u64).map(|i| (i % 3, i % 4))),
            Relation::<Count>::binary_ones(b1, Attr(1), (0..8u64).map(|i| (i % 2, i % 5))),
            Relation::<Count>::binary_ones(b1, b2, [(0, 0), (1, 0), (1, 1)]),
            Relation::<Count>::binary_ones(b2, m2, (0..8u64).map(|i| (i % 2, i % 4))),
            Relation::<Count>::binary_ones(m2, Attr(2), (0..8u64).map(|i| (i % 4, i % 3))),
            Relation::<Count>::binary_ones(b2, Attr(3), (0..8u64).map(|i| (i % 2, i % 2))),
        ];
        check::<Count>(&q, rels, 8);
    }

    #[test]
    fn empty_tree_query() {
        let q = two_center_twig();
        let rels = [
            Relation::<Count>::binary_ones(Attr(10), Attr(0), [(0, 1)]),
            Relation::<Count>::binary_ones(Attr(10), Attr(1), [(1, 2)]), // b mismatch
            Relation::<Count>::binary_ones(Attr(10), Attr(11), [(0, 0)]),
            Relation::<Count>::binary_ones(Attr(11), Attr(2), [(0, 3)]),
            Relation::<Count>::binary_ones(Attr(11), Attr(3), [(0, 4)]),
        ];
        let mut cluster = Cluster::new(4);
        let dist: Vec<DistRelation<Count>> = rels
            .iter()
            .map(|r| DistRelation::scatter(&cluster, r))
            .collect();
        let got = tree_query(&mut cluster, &q, &dist);
        assert!(got.is_empty());
    }
}

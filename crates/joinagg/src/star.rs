//! Star queries (§5): `∑_B R1(A1,B) ⋈ ⋯ ⋈ Rn(An,B)`, load
//! `O((N·OUT/p)^{2/3} + N·OUT^{1/2}/p + (N+OUT)/p)` (Theorem 5).
//!
//! The algorithm is *oblivious* to `OUT` (no estimator is known for star
//! outputs): for every `b`, sort the per-relation degrees `d_i(b)`; the
//! permutation `ϕ_b` partitions `dom(B)` into at most `n!` classes, each
//! inducing a subquery `Q_ϕ`. Within a class, Lemmas 5–6 bound the joins
//! of the odd-position and even-position relations by `N·√OUT`, so each
//! subquery reduces to one matrix multiplication over two "combined"
//! attributes, solved by §3.2. Subquery outputs may overlap on the output
//! attributes and are ⊕-aggregated at the end.

use crate::common::{combine_columns, expand_column, fresh_attr, union_aggregate};
use mpcjoin_matmul::matmul;
use mpcjoin_mpc::join::full_join;
use mpcjoin_mpc::primitives::reduce::reduce_by_key;
use mpcjoin_mpc::{Cluster, DistRelation, Distributed};
use mpcjoin_query::{Edge, TreeQuery};
use mpcjoin_relation::{Attr, Row, Schema, Value};
use mpcjoin_semiring::Semiring;
use mpcjoin_yannakakis::remove_dangling;

/// Evaluate a star query: `rels[i]` is binary over
/// `{endpoints[i], center}`. Output schema: `endpoints` in the given
/// order.
pub fn star_query<S: Semiring>(
    cluster: &mut Cluster,
    rels: &[DistRelation<S>],
    center: Attr,
    endpoints: &[Attr],
) -> DistRelation<S> {
    let n = rels.len();
    assert!(n >= 2, "a star query has at least two relations");
    assert_eq!(endpoints.len(), n);
    let out_schema = Schema::new(endpoints.to_vec());

    if n == 2 {
        let (result, _) = matmul(cluster, &rels[0], &rels[1]);
        return crate::line::reorder_binary(result, &out_schema);
    }

    // Dangling removal: afterwards every b appears in all n relations.
    cluster.mark_phase("star: dangling removal");
    let q = TreeQuery::new(
        (0..n).map(|i| Edge::binary(endpoints[i], center)).collect(),
        endpoints.iter().copied(),
    );
    let reduced = remove_dangling(cluster, &q, rels);
    if reduced.iter().any(DistRelation::is_empty) {
        return DistRelation::empty(cluster, out_schema);
    }

    // --- Step 1: per-b degree vectors and permutation classes. ---
    cluster.mark_phase("star: permutation classes");
    let p = cluster.p();
    let mut deg_parts: Vec<Vec<(Value, Vec<u64>)>> = vec![Vec::new(); p];
    for (i, rel) in reduced.iter().enumerate() {
        for (server, local) in rel
            .degrees(cluster, center)
            .into_parts()
            .into_iter()
            .enumerate()
        {
            deg_parts[server].extend(local.into_iter().map(|(b, d)| {
                let mut v = vec![0u64; n];
                v[i] = d;
                (b, v)
            }));
        }
    }
    let degree_vectors = reduce_by_key(
        cluster,
        Distributed::from_parts(deg_parts),
        |acc: &mut Vec<u64>, v| {
            for (a, b) in acc.iter_mut().zip(v) {
                *a += b;
            }
        },
    );
    // Permutation code: the sorted order of relations by (degree, index),
    // encoded in base n+1.
    let encode_perm = move |degs: &[u64]| -> u64 {
        let mut order: Vec<usize> = (0..degs.len()).collect();
        order.sort_by_key(|&i| (degs[i], i));
        order
            .iter()
            .fold(0u64, |acc, &i| acc * (degs.len() as u64 + 1) + i as u64)
    };
    let perm_of_b = degree_vectors.map(move |(b, degs)| (b, encode_perm(&degs)));

    // Which permutation classes actually occur (driver knowledge).
    let present = reduce_by_key(cluster, perm_of_b.clone().map(|(_, c)| (c, ())), |_, _| ());
    let gathered = cluster.exchange(
        present
            .into_parts()
            .into_iter()
            .map(|local| local.into_iter().map(|(c, ())| (0usize, c)).collect())
            .collect(),
    );
    let mut perm_codes: Vec<u64> = gathered.local(0).clone();
    perm_codes.sort_unstable();

    // Attach each tuple's class (one lookup per relation).
    let tagged: Vec<Distributed<((Row, S), Option<u64>)>> = reduced
        .iter()
        .map(|rel| {
            rel.attach_stat(
                cluster,
                &[center],
                perm_of_b.clone().map(|(b, c)| (vec![b], c)),
            )
        })
        .collect();

    let decode_perm = |code: u64| -> Vec<usize> {
        let mut digits = Vec::with_capacity(n);
        let mut c = code;
        for _ in 0..n {
            digits.push((c % (n as u64 + 1)) as usize);
            c /= n as u64 + 1;
        }
        digits.reverse();
        digits
    };

    // --- Steps 2–3: one matrix multiplication per class. ---
    cluster.mark_phase("star: per-class multiplications");
    let code_o = fresh_attr(endpoints.iter().copied().chain([center]));
    let code_e = Attr(code_o.0 + 1);
    let mut fragments = Vec::new();
    for &perm in &perm_codes {
        let order = decode_perm(perm); // order[k] = relation at sorted position k+1
        let restricted: Vec<DistRelation<S>> = tagged
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let data = t.clone().map_local(|_, items| {
                    items
                        .into_iter()
                        .filter_map(|(entry, c)| (c == Some(perm)).then_some(entry))
                        .collect::<Vec<_>>()
                });
                DistRelation::from_distributed(reduced[i].schema().clone(), data)
            })
            .collect();

        // Odd / even positions of the sorted order (1-indexed as in §5).
        let join_side = |cluster: &mut Cluster, members: &[usize]| -> DistRelation<S> {
            let mut acc = restricted[members[0]].clone();
            for &i in &members[1..] {
                acc = full_join(cluster, &acc, &restricted[i]);
                if acc.is_empty() {
                    break;
                }
            }
            acc
        };
        let odd: Vec<usize> = order.iter().copied().step_by(2).collect();
        let even: Vec<usize> = order.iter().copied().skip(1).step_by(2).collect();
        let r_odd = join_side(cluster, &odd);
        if r_odd.is_empty() {
            continue;
        }
        let r_even = join_side(cluster, &even);
        if r_even.is_empty() {
            continue;
        }

        // Fuse each side's output columns and multiply.
        let odd_cols: Vec<Attr> = odd.iter().map(|&i| endpoints[i]).collect();
        let even_cols: Vec<Attr> = even.iter().map(|&i| endpoints[i]).collect();
        let co = combine_columns(cluster, &r_odd, &odd_cols, code_o);
        let ce = combine_columns(cluster, &r_even, &even_cols, code_e);
        let (product, _) = matmul(cluster, &co.relation, &ce.relation);
        if product.is_empty() {
            continue;
        }
        let expanded_o = expand_column(cluster, &product, code_o, &odd_cols, co.decode);
        let expanded = expand_column(cluster, &expanded_o, code_e, &even_cols, ce.decode);
        fragments.push(expanded);
    }

    // --- Final aggregation across classes. ---
    cluster.mark_phase("star: combine fragments");
    union_aggregate(cluster, out_schema, fragments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_relation::Relation;
    use mpcjoin_semiring::{Count, WhyProv, XorRing};
    use mpcjoin_yannakakis::sequential_join_aggregate;

    const B: Attr = Attr(100);

    fn endpoints(n: usize) -> Vec<Attr> {
        (0..n as u32).map(Attr).collect()
    }

    fn check<SR: Semiring>(rels: Vec<Relation<SR>>, p: usize) -> Cluster {
        let n = rels.len();
        let eps = endpoints(n);
        let q = TreeQuery::new(
            (0..n).map(|i| Edge::binary(eps[i], B)).collect(),
            eps.iter().copied(),
        );
        let expect = sequential_join_aggregate(&q, &rels);
        let mut cluster = Cluster::new(p);
        let dist: Vec<DistRelation<SR>> = rels
            .iter()
            .map(|r| DistRelation::scatter(&cluster, r))
            .collect();
        let got = star_query(&mut cluster, &dist, B, &eps);
        assert!(
            got.gather().semantically_eq(&expect),
            "star query diverged from oracle"
        );
        cluster
    }

    #[test]
    fn three_arm_star_random() {
        let eps = endpoints(3);
        check::<Count>(
            vec![
                Relation::binary_ones(eps[0], B, (0..40u64).map(|i| (i % 13, i % 5))),
                Relation::binary_ones(eps[1], B, (0..40u64).map(|i| (i % 9, i % 5))),
                Relation::binary_ones(eps[2], B, (0..40u64).map(|i| (i % 7, i % 5))),
            ],
            8,
        );
    }

    #[test]
    fn four_arm_star_mixed_degrees() {
        let eps = endpoints(4);
        // b = 0 has very skewed arm degrees; b = 1 uniform.
        let mut rels = Vec::new();
        for (i, width) in [30u64, 3, 9, 1].iter().enumerate() {
            let mut tuples = Vec::new();
            for a in 0..*width {
                tuples.push((a, 0u64));
            }
            for a in 0..4u64 {
                tuples.push((100 + a, 1));
            }
            rels.push(Relation::<Count>::binary_ones(eps[i], B, tuples));
        }
        check::<Count>(rels, 8);
    }

    #[test]
    fn xor_star_catches_duplicates() {
        let eps = endpoints(3);
        check::<XorRing>(
            vec![
                Relation::binary_ones(eps[0], B, (0..30u64).map(|i| (i % 6, i % 4))),
                Relation::binary_ones(eps[1], B, (0..30u64).map(|i| (i % 5, i % 4))),
                Relation::binary_ones(eps[2], B, (0..30u64).map(|i| (i % 4, i % 4))),
            ],
            4,
        );
    }

    #[test]
    fn provenance_star_small() {
        let eps = endpoints(3);
        let mk = |k: usize, pairs: &[(u64, u64)]| {
            Relation::from_entries(
                Schema::binary(eps[k], B),
                pairs
                    .iter()
                    .enumerate()
                    .map(|(i, &(a, b))| (vec![a, b], WhyProv::tuple((k * 100 + i) as u32)))
                    .collect::<Vec<_>>(),
            )
        };
        check::<WhyProv>(
            vec![
                mk(0, &[(1, 0), (2, 0), (1, 1)]),
                mk(1, &[(7, 0), (8, 1)]),
                mk(2, &[(4, 0), (4, 1), (5, 1)]),
            ],
            4,
        );
    }

    #[test]
    fn empty_center_intersection() {
        let eps = endpoints(3);
        check::<Count>(
            vec![
                Relation::binary_ones(eps[0], B, [(1, 0)]),
                Relation::binary_ones(eps[1], B, [(2, 1)]),
                Relation::binary_ones(eps[2], B, [(3, 2)]),
            ],
            4,
        );
    }
}

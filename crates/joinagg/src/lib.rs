//! MPC algorithms for line, star, star-like and general tree
//! join-aggregate queries — §4–§7 of Hu & Yi (PODS 2020).
//!
//! * [`line_query`] — §4 (Theorem 4),
//! * [`star_query`] — §5 (Theorem 5),
//! * [`star_like_query`] — §6 (Lemma 7),
//! * [`tree_query`] — §7 (Theorem 6): reduce, decompose into twigs
//!   (Figure 2), evaluate each twig by the most specific algorithm above
//!   (skeleton + heavy/light divide-and-conquer for general twigs), and
//!   join the twig results free-connex-style.

pub mod common;
mod line;
mod star;
mod starlike;
mod tree;

pub use line::line_query;
pub use star::star_query;
pub use starlike::star_like_query;
pub use tree::tree_query;

//! Shared machinery for the §4–§7 algorithms: distributed dictionary
//! encoding of "combined attributes".
//!
//! Several reductions treat a set of attributes as one attribute (§6 step
//! (2.2): "Regarding `A^small` as a 'combined' attribute"; §7 step 2:
//! "replace `T_B` with a new edge `(B, V_B ∩ y)`"). Concretely this needs
//! a bijection between value *combinations* and fresh single values, built
//! distributedly: distinct combinations are ranked by a sort + prefix-sum
//! pass (2 + 3 rounds, linear load), giving exact, collision-free codes,
//! plus a decode table to expand final results back into their columns.

use mpcjoin_mpc::primitives::reduce::reduce_by_key;
use mpcjoin_mpc::primitives::scan::prefix_sums;
use mpcjoin_mpc::primitives::search::lookup_exact;
use mpcjoin_mpc::{Cluster, DistRelation, Distributed};
use mpcjoin_relation::{Attr, Row, Schema, Value};
use mpcjoin_semiring::Semiring;

/// A relation with some columns fused into one code column, plus the
/// decode table.
pub struct Combined<S: Semiring> {
    /// The rewritten relation; the fused columns are replaced by a single
    /// `code_attr` column (placed first, remaining columns after it).
    pub relation: DistRelation<S>,
    /// `code → original combination`, distributed. Keys are unique.
    pub decode: Distributed<(Value, Row)>,
}

/// Fuse the columns `cols` of `rel` into a fresh attribute `code_attr`.
pub fn combine_columns<S: Semiring>(
    cluster: &mut Cluster,
    rel: &DistRelation<S>,
    cols: &[Attr],
    code_attr: Attr,
) -> Combined<S> {
    assert!(!cols.is_empty());
    let pos = rel.schema().positions_of(cols);
    let kept: Vec<Attr> = rel
        .schema()
        .attrs()
        .iter()
        .copied()
        .filter(|a| !cols.contains(a))
        .collect();
    let kept_pos = rel.schema().positions_of(&kept);

    // Rank distinct combinations: dedupe, sort, exclusive prefix count.
    let combos = rel.distinct(cluster, cols);
    let sorted = mpcjoin_mpc::primitives::sort::sort_by_key(
        cluster,
        combos.map(|(row, ())| row),
        |row: &Row| row.clone(),
    );
    let ranked = prefix_sums(cluster, sorted, |_| 1);
    let decode: Distributed<(Value, Row)> = ranked.clone().map(|(row, code)| (code, row));
    let catalog: Distributed<(Row, Value)> = ranked.map(|(row, code)| (row, code));

    // Attach codes and rewrite rows as (code, kept columns…).
    let with_code = lookup_exact(
        cluster,
        rel.data().clone(),
        move |(row, _): &(Row, S)| pos.iter().map(|&i| row[i]).collect::<Row>(),
        catalog,
    );
    let data = with_code.map_local(|_, items| {
        items
            .into_iter()
            .map(|((row, s), code)| {
                let code = code.expect("every combination was ranked");
                let mut new_row = Vec::with_capacity(1 + kept_pos.len());
                new_row.push(code);
                new_row.extend(kept_pos.iter().map(|&i| row[i]));
                (new_row, s)
            })
            .collect::<Vec<_>>()
    });
    let mut schema_attrs = vec![code_attr];
    schema_attrs.extend(kept.iter().copied());
    Combined {
        relation: DistRelation::from_distributed(Schema::new(schema_attrs), data),
        decode,
    }
}

/// Expand a code column back into its original columns: each row's value
/// at `code_attr` is replaced by the decoded combination (spliced in at
/// the code column's position). `target` names the decoded columns.
pub fn expand_column<S: Semiring>(
    cluster: &mut Cluster,
    rel: &DistRelation<S>,
    code_attr: Attr,
    target: &[Attr],
    decode: Distributed<(Value, Row)>,
) -> DistRelation<S> {
    let code_pos = rel.schema().positions_of(&[code_attr])[0];
    let catalog = decode.map(|(code, row)| (code, row));
    let with_combo = lookup_exact(
        cluster,
        rel.data().clone(),
        move |(row, _): &(Row, S)| row[code_pos],
        catalog,
    );
    let data = with_combo.map_local(|_, items| {
        items
            .into_iter()
            .map(|((row, s), combo)| {
                let combo = combo.expect("code must decode");
                let mut new_row = Vec::with_capacity(row.len() - 1 + combo.len());
                new_row.extend_from_slice(&row[..code_pos]);
                new_row.extend_from_slice(&combo);
                new_row.extend_from_slice(&row[code_pos + 1..]);
                (new_row, s)
            })
            .collect::<Vec<_>>()
    });
    let mut attrs: Vec<Attr> = Vec::new();
    attrs.extend_from_slice(&rel.schema().attrs()[..code_pos]);
    attrs.extend_from_slice(target);
    attrs.extend_from_slice(&rel.schema().attrs()[code_pos + 1..]);
    DistRelation::from_distributed(Schema::new(attrs), data)
}

/// ⊕-combine several distributed result fragments over the same schema
/// into one coalesced relation (one reduce round).
pub fn union_aggregate<S: Semiring>(
    cluster: &mut Cluster,
    schema: Schema,
    fragments: Vec<DistRelation<S>>,
) -> DistRelation<S> {
    let p = cluster.p();
    let mut parts: Vec<Vec<(Row, S)>> = vec![Vec::new(); p];
    for frag in fragments {
        let frag = if frag.schema() == &schema {
            frag
        } else {
            // Reorder columns to the target schema.
            let pos = frag.schema().positions_of(schema.attrs());
            let data = frag
                .data()
                .clone()
                .map(move |(row, s)| (pos.iter().map(|&i| row[i]).collect(), s));
            DistRelation::from_distributed(schema.clone(), data)
        };
        for (i, local) in frag.into_data().into_parts().into_iter().enumerate() {
            parts[i].extend(local);
        }
    }
    let reduced = reduce_by_key(cluster, Distributed::from_parts(parts), |acc: &mut S, v| {
        acc.add_assign(&v)
    });
    let data = reduced.map_local(|_, items| {
        items
            .into_iter()
            .filter(|(_, s)| !s.is_zero())
            .collect::<Vec<_>>()
    });
    DistRelation::from_distributed(schema, data)
}

/// A fresh attribute id above everything `q`-related: used for combined
/// columns.
pub fn fresh_attr(used: impl IntoIterator<Item = Attr>) -> Attr {
    Attr(used.into_iter().map(|a| a.0).max().map_or(0, |m| m + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_relation::Relation;
    use mpcjoin_semiring::Count;

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);
    const CODE: Attr = Attr(9);

    #[test]
    fn combine_then_expand_roundtrips() {
        let mut cluster = Cluster::new(4);
        let rel = Relation::<Count>::from_entries(
            Schema::new(vec![A, B, C]),
            (0..40u64)
                .map(|i| (vec![i % 5, i % 3, i], Count(1 + i)))
                .collect(),
        );
        let d = DistRelation::scatter(&cluster, &rel);
        let combined = combine_columns(&mut cluster, &d, &[A, B], CODE);
        assert_eq!(combined.relation.schema().attrs(), &[CODE, C]);
        // Codes are dense 0..#distinct.
        let n_combos = rel.project_aggregate(&[A, B]).len();
        let mut codes: Vec<u64> = combined
            .decode
            .clone()
            .collect_all()
            .into_iter()
            .map(|(c, _)| c)
            .collect();
        codes.sort_unstable();
        assert_eq!(codes, (0..n_combos as u64).collect::<Vec<_>>());

        let expanded = expand_column(
            &mut cluster,
            &combined.relation,
            CODE,
            &[A, B],
            combined.decode,
        );
        assert_eq!(expanded.schema().attrs(), &[A, B, C]);
        assert!(expanded.gather().semantically_eq(&rel));
    }

    #[test]
    fn union_aggregate_merges_fragments() {
        let mut cluster = Cluster::new(4);
        let schema = Schema::binary(A, B);
        let f1 = DistRelation::scatter(
            &cluster,
            &Relation::<Count>::from_entries(
                schema.clone(),
                vec![(vec![1, 2], Count(3)), (vec![4, 5], Count(1))],
            ),
        );
        // Fragment with swapped column order: must be reordered.
        let f2 = DistRelation::scatter(
            &cluster,
            &Relation::<Count>::from_entries(Schema::binary(B, A), vec![(vec![2, 1], Count(4))]),
        );
        let merged = union_aggregate(&mut cluster, schema, vec![f1, f2]);
        assert_eq!(
            merged.gather().canonical(),
            vec![(vec![1, 2], Count(7)), (vec![4, 5], Count(1))]
        );
    }

    #[test]
    fn fresh_attr_is_above_all() {
        assert_eq!(fresh_attr([A, C, B]), Attr(3));
        assert_eq!(fresh_attr([]), Attr(0));
    }
}

//! Star-like queries (§6, Figure 1): `n` line-query arms sharing a
//! non-output attribute `B`; load
//! `O((NN')^{1/3}OUT^{1/2}/p^{2/3} + N'^{2/3}OUT^{1/3}/p^{2/3} +
//! N·OUT^{2/3}/p + (N+N'+OUT)/p)` (Lemma 7).
//!
//! Like the star algorithm, this is oblivious to `OUT`. Per-`b`
//! arm-reachability degrees `d_i(b)` (exact for single-relation arms,
//! §2.2 KMV estimates otherwise) induce a permutation `ϕ_b`, and `B_ϕ`
//! further splits into
//!
//! * `B^small_ϕ` (`∏_{i<n} d_{ϕ(i)} ≤ d_{ϕ(n)}`): the `n−1` lighter arms
//!   shrink (Yannakakis along each arm) and join into one relation over a
//!   *combined* attribute, reducing to a **line query** along the heaviest
//!   arm (Figure 1, steps 2.1–2.2);
//! * `B^large_ϕ`: every arm shrinks, the arms split into the index sets
//!   `I = {ϕ(n), ϕ(n−3), …}` and `J` (Lemma 11's balanced split), and the
//!   two joined sides multiply as matrices — after *uniformizing* `dom(B)`
//!   into `O(log N)` degree-dyadic buckets, each multiplied on its own
//!   proportionally-sized sub-cluster (steps 3.1–3.4).

use crate::common::{combine_columns, expand_column, fresh_attr, union_aggregate};
use crate::line::{line_query, reorder_binary};
use mpcjoin_matmul::matmul;
use mpcjoin_mpc::join::{full_join, join_aggregate};
use mpcjoin_mpc::primitives::reduce::reduce_by_key;
use mpcjoin_mpc::{Cluster, DistRelation, Distributed};
use mpcjoin_query::{detect_star_like, Arm, TreeQuery};
use mpcjoin_relation::{Attr, Row, Schema, Value};
use mpcjoin_semiring::Semiring;
use mpcjoin_sketch::estimate_out_chain_default;
use mpcjoin_yannakakis::remove_dangling;

/// Evaluate a star-like query. `q` must classify as star-like (or line);
/// `rels[e]` is the relation of edge `e` of `q`. Output schema: the arm
/// endpoints in `StarLikeShape` arm order.
pub fn star_like_query<S: Semiring>(
    cluster: &mut Cluster,
    q: &TreeQuery,
    rels: &[DistRelation<S>],
) -> DistRelation<S> {
    let shape = detect_star_like(q).expect("query must be star-like");
    let center = shape.center;
    let n = shape.arms.len();
    let endpoints: Vec<Attr> = shape.arms.iter().map(Arm::endpoint).collect();
    let out_schema = Schema::new(endpoints.clone());

    cluster.mark_phase("starlike: dangling removal");
    let reduced = remove_dangling(cluster, q, rels);
    if reduced.iter().any(DistRelation::is_empty) {
        return DistRelation::empty(cluster, out_schema);
    }

    // --- Step 1: per-b arm degrees d_i(b). ---
    cluster.mark_phase("starlike: arm degree statistics");
    let p = cluster.p();
    let mut deg_parts: Vec<Vec<(Value, Vec<u64>)>> = vec![Vec::new(); p];
    for (i, arm) in shape.arms.iter().enumerate() {
        let stats = if arm.len() == 1 {
            reduced[arm.edges[0]].degrees(cluster, center)
        } else {
            let chain: Vec<&DistRelation<S>> = arm.edges.iter().map(|&e| &reduced[e]).collect();
            estimate_out_chain_default(cluster, &chain, &arm.attrs).per_group
        };
        for (server, local) in stats.into_parts().into_iter().enumerate() {
            deg_parts[server].extend(local.into_iter().map(|(b, d)| {
                let mut v = vec![0u64; n];
                v[i] = d.max(1);
                (b, v)
            }));
        }
    }
    let degree_vectors = reduce_by_key(
        cluster,
        Distributed::from_parts(deg_parts),
        |acc: &mut Vec<u64>, v| {
            for (a, b) in acc.iter_mut().zip(v) {
                *a = (*a).max(b);
            }
        },
    );

    // Class of b: permutation (base n+1 digits) and small/large flag.
    let encode_class = move |degs: &[u64]| -> u64 {
        let mut order: Vec<usize> = (0..degs.len()).collect();
        order.sort_by_key(|&i| (degs[i], i));
        let perm = order
            .iter()
            .fold(0u64, |acc, &i| acc * (degs.len() as u64 + 1) + i as u64);
        let rest: u64 = order[..degs.len() - 1]
            .iter()
            .fold(1u64, |acc, &i| acc.saturating_mul(degs[i]));
        let small = rest <= degs[order[degs.len() - 1]];
        perm * 2 + u64::from(!small)
    };
    let class_of_b = degree_vectors.map(move |(b, degs)| (b, encode_class(&degs)));

    // Classes present (driver knowledge).
    let present = reduce_by_key(cluster, class_of_b.clone().map(|(_, c)| (c, ())), |_, _| ());
    let gathered = cluster.exchange(
        present
            .into_parts()
            .into_iter()
            .map(|local| local.into_iter().map(|(c, ())| (0usize, c)).collect())
            .collect(),
    );
    let mut classes: Vec<u64> = gathered.local(0).clone();
    classes.sort_unstable();

    let decode_perm = |code: u64| -> Vec<usize> {
        let mut digits = Vec::with_capacity(n);
        let mut c = code;
        for _ in 0..n {
            digits.push((c % (n as u64 + 1)) as usize);
            c /= n as u64 + 1;
        }
        digits.reverse();
        digits
    };

    // Attach classes to the center-incident relation of each arm.
    let center_edge: Vec<usize> = shape.arms.iter().map(|arm| arm.edges[0]).collect();
    let class_catalog = class_of_b.map(|(b, c)| (vec![b], c));
    let tagged: Vec<Distributed<((Row, S), Option<u64>)>> = center_edge
        .iter()
        .map(|&e| rel_attach(cluster, &reduced[e], center, &class_catalog))
        .collect();

    let code_1 = fresh_attr(q.attrs());
    let code_2 = Attr(code_1.0 + 1);

    cluster.mark_phase("starlike: per-class subqueries");
    let mut fragments = Vec::new();
    for &class in &classes {
        let small = class % 2 == 0;
        let order = decode_perm(class / 2);

        // Restrict the subquery to this class of b and re-reduce.
        let mut sub_rels: Vec<DistRelation<S>> = reduced.to_vec();
        for (i, &e) in center_edge.iter().enumerate() {
            let data = tagged[i].clone().map_local(|_, items| {
                items
                    .into_iter()
                    .filter_map(|(entry, c)| (c == Some(class)).then_some(entry))
                    .collect::<Vec<_>>()
            });
            sub_rels[e] = DistRelation::from_distributed(reduced[e].schema().clone(), data);
        }
        let sub_rels = remove_dangling(cluster, q, &sub_rels);
        if sub_rels.iter().any(DistRelation::is_empty) {
            continue;
        }
        let shrink = |cluster: &mut Cluster, arm: &Arm| -> DistRelation<S> {
            shrink_arm(cluster, arm, &sub_rels, center)
        };

        if small {
            // --- Step 2: reduce to a line query along the heaviest arm.
            let light_positions = &order[..n - 1];
            let mut joined: Option<DistRelation<S>> = None;
            for &i in light_positions {
                let shrunk = shrink(cluster, &shape.arms[i]);
                joined = Some(match joined {
                    None => shrunk,
                    Some(acc) => full_join(cluster, &acc, &shrunk),
                });
            }
            let joined = joined.expect("n ≥ 2 arms");
            if joined.is_empty() {
                continue;
            }
            let light_cols: Vec<Attr> = light_positions.iter().map(|&i| endpoints[i]).collect();
            let combined = combine_columns(cluster, &joined, &light_cols, code_1);

            let heavy_arm = &shape.arms[order[n - 1]];
            let mut chain: Vec<DistRelation<S>> = vec![combined.relation];
            chain.extend(heavy_arm.edges.iter().map(|&e| sub_rels[e].clone()));
            let mut chain_attrs = vec![code_1];
            chain_attrs.extend_from_slice(&heavy_arm.attrs);
            let line_out = line_query(cluster, &chain, &chain_attrs);
            if line_out.is_empty() {
                continue;
            }
            let expanded = expand_column(cluster, &line_out, code_1, &light_cols, combined.decode);
            fragments.push(expanded);
        } else {
            // --- Step 3: shrink all arms, split per Lemma 11, uniformize.
            let shrunk: Vec<DistRelation<S>> =
                shape.arms.iter().map(|arm| shrink(cluster, arm)).collect();
            if shrunk.iter().any(DistRelation::is_empty) {
                continue;
            }
            // I = positions n, n-3, n-6, … (1-indexed); J = the rest.
            let mut in_i = vec![false; n];
            let mut pos = n; // 1-indexed position
            loop {
                in_i[order[pos - 1]] = true;
                if pos <= 3 {
                    break;
                }
                pos -= 3;
            }
            let side = |cluster: &mut Cluster, take: bool| -> DistRelation<S> {
                let mut acc: Option<DistRelation<S>> = None;
                for i in 0..n {
                    if in_i[i] == take {
                        acc = Some(match acc {
                            None => shrunk[i].clone(),
                            Some(a) => full_join(cluster, &a, &shrunk[i]),
                        });
                    }
                }
                acc.expect("both sides non-empty for n ≥ 2")
            };
            let r_i = side(cluster, true);
            let r_j = side(cluster, false);
            if r_i.is_empty() || r_j.is_empty() {
                continue;
            }
            let cols_i: Vec<Attr> = (0..n).filter(|&i| in_i[i]).map(|i| endpoints[i]).collect();
            let cols_j: Vec<Attr> = (0..n).filter(|&i| !in_i[i]).map(|i| endpoints[i]).collect();
            let ci = combine_columns(cluster, &r_i, &cols_i, code_1);
            let cj = combine_columns(cluster, &r_j, &cols_j, code_2);

            let product = uniformized_matmul(cluster, &ci.relation, &cj.relation, center);
            if product.is_empty() {
                continue;
            }
            let e1 = expand_column(cluster, &product, code_1, &cols_i, ci.decode);
            let e2 = expand_column(cluster, &e1, code_2, &cols_j, cj.decode);
            fragments.push(e2);
        }
    }

    cluster.mark_phase("starlike: combine fragments");
    union_aggregate(cluster, out_schema, fragments)
}

/// Attach a per-center-value statistic to a relation's tuples.
fn rel_attach<S: Semiring, U: Clone + Send + 'static>(
    cluster: &mut Cluster,
    rel: &DistRelation<S>,
    center: Attr,
    catalog: &Distributed<(Row, U)>,
) -> Distributed<((Row, S), Option<U>)> {
    rel.attach_stat(cluster, &[center], catalog.clone())
}

/// Collapse an arm into a single relation `R(endpoint, center)` by a
/// Yannakakis pass from the endpoint inward (§6 step 2.1).
fn shrink_arm<S: Semiring>(
    cluster: &mut Cluster,
    arm: &Arm,
    rels: &[DistRelation<S>],
    center: Attr,
) -> DistRelation<S> {
    let endpoint = arm.endpoint();
    let h = arm.len();
    // arm.attrs = [center, c1, …, endpoint]; edges[k] spans
    // attrs[k]..attrs[k+1]. Walk from the endpoint toward the center.
    let mut acc = rels[arm.edges[h - 1]].clone();
    for k in (0..h - 1).rev() {
        acc = join_aggregate(
            cluster,
            &acc,
            &rels[arm.edges[k]],
            &[endpoint, arm.attrs[k]],
        );
    }
    reorder_binary(acc, &Schema::binary(endpoint, center))
}

/// §6 steps (3.3)–(3.4): partition `dom(B)` into dyadic buckets by the
/// left side's `B`-degree and multiply each bucket on a sub-cluster sized
/// proportionally to its input, all buckets in parallel.
fn uniformized_matmul<S: Semiring>(
    cluster: &mut Cluster,
    left: &DistRelation<S>,
    right: &DistRelation<S>,
    center: Attr,
) -> DistRelation<S> {
    let p = cluster.p();
    let schema = Schema::binary(left.schema().attrs()[0], right.schema().attrs()[0]);
    let deg = left.degrees(cluster, center);
    let bucket_catalog = deg.map(|(b, d)| (vec![b], 63 - d.max(1).leading_zeros() as u64));

    // Bucket totals (driver).
    let l_tag = left.attach_stat(cluster, &[center], bucket_catalog.clone());
    let r_tag = right.attach_stat(cluster, &[center], bucket_catalog);
    let mut count_parts: Vec<Vec<(u64, u64)>> = vec![Vec::new(); p];
    for (i, local) in l_tag.iter() {
        count_parts[i].extend(local.iter().filter_map(|(_, b)| b.map(|b| (b, 1u64))));
    }
    for (i, local) in r_tag.iter() {
        count_parts[i].extend(local.iter().filter_map(|(_, b)| b.map(|b| (b, 1u64))));
    }
    let counts = reduce_by_key(cluster, Distributed::from_parts(count_parts), |acc, v| {
        *acc += v
    });
    let gathered = cluster.exchange(
        counts
            .into_parts()
            .into_iter()
            .map(|local| local.into_iter().map(|kv| (0usize, kv)).collect())
            .collect(),
    );
    let mut buckets: Vec<(u64, u64)> = gathered.local(0).clone();
    buckets.sort_unstable();
    if buckets.is_empty() {
        return DistRelation::empty(cluster, schema);
    }
    let total: u64 = buckets.iter().map(|(_, c)| c).sum();
    let sizes: Vec<usize> = buckets
        .iter()
        .map(|(_, c)| (((*c as f64 / total as f64) * p as f64).ceil() as usize).max(1))
        .collect();
    let (mut children, offsets) = cluster.split_with_offsets(&sizes);

    // Ship each bucket's tuples to its sub-cluster (one parent round).
    let mut ship: Vec<Vec<(usize, (u64, u8, Row, S))>> = vec![Vec::new(); p];
    let bucket_index: std::collections::HashMap<u64, usize> = buckets
        .iter()
        .enumerate()
        .map(|(i, (b, _))| (*b, i))
        .collect();
    let mut spread = 0usize;
    for (side, tagd) in [(1u8, &l_tag), (2u8, &r_tag)] {
        for (src, local) in tagd.iter() {
            for ((row, s), b) in local {
                let Some(b) = b else { continue };
                let bi = bucket_index[b];
                let dest = (offsets[bi] + spread % sizes[bi]) % p;
                spread += 1;
                ship[src].push((dest, (*b, side, row.clone(), s.clone())));
            }
        }
    }
    let shipped = cluster.exchange(ship);

    let mut result_parts: Vec<Vec<(Row, S)>> = vec![Vec::new(); p];
    for (bi, child) in children.iter_mut().enumerate() {
        let pi = sizes[bi];
        let bucket = buckets[bi].0;
        let mut l_parts: Vec<Vec<(Row, S)>> = vec![Vec::new(); pi];
        let mut r_parts: Vec<Vec<(Row, S)>> = vec![Vec::new(); pi];
        for j in 0..pi {
            for (b, side, row, s) in shipped.local((offsets[bi] + j) % p) {
                if *b == bucket {
                    if *side == 1 {
                        l_parts[j].push((row.clone(), s.clone()));
                    } else {
                        r_parts[j].push((row.clone(), s.clone()));
                    }
                }
            }
        }
        let dl =
            DistRelation::from_distributed(left.schema().clone(), Distributed::from_parts(l_parts));
        let dr = DistRelation::from_distributed(
            right.schema().clone(),
            Distributed::from_parts(r_parts),
        );
        if dl.is_empty() || dr.is_empty() {
            continue;
        }
        let (out, _) = matmul(child, &dl, &dr);
        for (slot, local) in out
            .into_data()
            .reindexed(p, offsets[bi])
            .into_parts()
            .into_iter()
            .enumerate()
        {
            result_parts[slot].extend(local);
        }
    }
    cluster.join_parallel(&children);
    DistRelation::from_distributed(schema, Distributed::from_parts(result_parts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_query::Edge;
    use mpcjoin_relation::Relation;
    use mpcjoin_semiring::{Count, XorRing};
    use mpcjoin_yannakakis::sequential_join_aggregate;

    const B: Attr = Attr(50);

    /// Figure-1-like query: arms of lengths 1, 1, 2 around B.
    fn fig1_query() -> TreeQuery {
        TreeQuery::new(
            vec![
                Edge::binary(B, Attr(0)),        // arm 1 (single edge)
                Edge::binary(B, Attr(10)),       // arm 3 start (interior)
                Edge::binary(Attr(10), Attr(1)), // arm 3 end
                Edge::binary(B, Attr(2)),        // arm 2 (single edge)
            ],
            [Attr(0), Attr(1), Attr(2)],
        )
    }

    fn check<SR: Semiring>(q: &TreeQuery, rels: Vec<Relation<SR>>, p: usize) -> Cluster {
        let expect = sequential_join_aggregate(q, &rels);
        let mut cluster = Cluster::new(p);
        let dist: Vec<DistRelation<SR>> = rels
            .iter()
            .map(|r| DistRelation::scatter(&cluster, r))
            .collect();
        let got = star_like_query(&mut cluster, q, &dist);
        // Compare after projecting to a common column order.
        let out: Vec<Attr> = q.output().iter().copied().collect();
        let expect = expect.project_aggregate(&out);
        let got_reordered = reorder_binary_any(got, &Schema::new(out));
        assert!(
            got_reordered.gather().semantically_eq(&expect),
            "star-like query diverged from oracle"
        );
        cluster
    }

    fn reorder_binary_any<SR: Semiring>(
        rel: DistRelation<SR>,
        target: &Schema,
    ) -> DistRelation<SR> {
        let pos = rel.schema().positions_of(target.attrs());
        let data = rel
            .data()
            .clone()
            .map(move |(row, s)| (pos.iter().map(|&i| row[i]).collect::<Row>(), s));
        DistRelation::from_distributed(target.clone(), data)
    }

    #[test]
    fn figure_1_style_query() {
        let q = fig1_query();
        let rels = vec![
            Relation::<Count>::binary_ones(B, Attr(0), (0..30u64).map(|i| (i % 4, i % 9))),
            Relation::<Count>::binary_ones(B, Attr(10), (0..30u64).map(|i| (i % 4, i % 6))),
            Relation::<Count>::binary_ones(Attr(10), Attr(1), (0..30u64).map(|i| (i % 6, i % 8))),
            Relation::<Count>::binary_ones(B, Attr(2), (0..30u64).map(|i| (i % 4, i % 5))),
        ];
        check::<Count>(&q, rels, 8);
    }

    #[test]
    fn skewed_center_small_and_large_classes() {
        let q = fig1_query();
        // b = 0: tiny light arms, huge heavy arm (small class);
        // b = 1: balanced degrees (large class).
        let mut r0 = Vec::new();
        let mut r1 = Vec::new();
        let mut r1b = Vec::new();
        let mut r2 = Vec::new();
        for a in 0..2u64 {
            r0.push((0u64, a));
        }
        for c in 0..2u64 {
            r1.push((0u64, c));
        }
        for (c, a) in (0..2u64).flat_map(|c| (0..20u64).map(move |a| (c, a))) {
            r1b.push((c, a));
        }
        for a in 0..2u64 {
            r2.push((0u64, a));
        }
        for a in 0..5u64 {
            r0.push((1, 10 + a));
            r1.push((1, 10 + a % 2));
            r2.push((1, 10 + a));
        }
        r1b.push((10, 99));
        r1b.push((11, 98));
        let rels = vec![
            Relation::<Count>::binary_ones(B, Attr(0), r0),
            Relation::<Count>::binary_ones(B, Attr(10), r1),
            Relation::<Count>::binary_ones(Attr(10), Attr(1), r1b),
            Relation::<Count>::binary_ones(B, Attr(2), r2),
        ];
        check::<Count>(&q, rels, 8);
    }

    #[test]
    fn xor_star_like() {
        let q = fig1_query();
        let rels = vec![
            Relation::<XorRing>::binary_ones(B, Attr(0), (0..20u64).map(|i| (i % 3, i % 7))),
            Relation::<XorRing>::binary_ones(B, Attr(10), (0..20u64).map(|i| (i % 3, i % 4))),
            Relation::<XorRing>::binary_ones(Attr(10), Attr(1), (0..20u64).map(|i| (i % 4, i % 5))),
            Relation::<XorRing>::binary_ones(B, Attr(2), (0..20u64).map(|i| (i % 3, i % 6))),
        ];
        check::<XorRing>(&q, rels, 4);
    }

    #[test]
    fn five_arm_figure_1_shape() {
        // The full Figure 1 shape: 5 arms, lengths 1,2,1,1,1 (T2 has C21,
        // C22 in the paper; we use length 2 to keep the test fast).
        let q = TreeQuery::new(
            vec![
                Edge::binary(B, Attr(0)),
                Edge::binary(B, Attr(20)),
                Edge::binary(Attr(20), Attr(1)),
                Edge::binary(B, Attr(2)),
                Edge::binary(B, Attr(3)),
                Edge::binary(B, Attr(4)),
            ],
            [Attr(0), Attr(1), Attr(2), Attr(3), Attr(4)],
        );
        let rels = vec![
            Relation::<Count>::binary_ones(B, Attr(0), (0..12u64).map(|i| (i % 3, i % 4))),
            Relation::<Count>::binary_ones(B, Attr(20), (0..12u64).map(|i| (i % 3, i % 5))),
            Relation::<Count>::binary_ones(Attr(20), Attr(1), (0..12u64).map(|i| (i % 5, i % 3))),
            Relation::<Count>::binary_ones(B, Attr(2), (0..12u64).map(|i| (i % 3, i % 2))),
            Relation::<Count>::binary_ones(B, Attr(3), (0..12u64).map(|i| (i % 3, i % 4))),
            Relation::<Count>::binary_ones(B, Attr(4), (0..12u64).map(|i| (i % 3, i % 3))),
        ];
        check::<Count>(&q, rels, 8);
    }

    #[test]
    fn long_arm_of_three_hops() {
        // One arm of length 3: exercises the iterated shrink and the
        // line-query reduction with a genuinely long heavy arm.
        let q = TreeQuery::new(
            vec![
                Edge::binary(B, Attr(0)),
                Edge::binary(B, Attr(30)),
                Edge::binary(Attr(30), Attr(31)),
                Edge::binary(Attr(31), Attr(1)),
                Edge::binary(B, Attr(2)),
            ],
            [Attr(0), Attr(1), Attr(2)],
        );
        let rels = vec![
            Relation::<Count>::binary_ones(B, Attr(0), (0..18u64).map(|i| (i % 3, i % 5))),
            Relation::<Count>::binary_ones(B, Attr(30), (0..18u64).map(|i| (i % 3, i % 4))),
            Relation::<Count>::binary_ones(Attr(30), Attr(31), (0..18u64).map(|i| (i % 4, i % 6))),
            Relation::<Count>::binary_ones(Attr(31), Attr(1), (0..18u64).map(|i| (i % 6, i % 7))),
            Relation::<Count>::binary_ones(B, Attr(2), (0..18u64).map(|i| (i % 3, i % 2))),
        ];
        check::<Count>(&q, rels, 8);
    }

    #[test]
    fn empty_after_reduction() {
        let q = fig1_query();
        let rels = [
            Relation::<Count>::binary_ones(B, Attr(0), [(0, 1)]),
            Relation::<Count>::binary_ones(B, Attr(10), [(1, 5)]),
            Relation::<Count>::binary_ones(Attr(10), Attr(1), [(5, 7)]),
            Relation::<Count>::binary_ones(B, Attr(2), [(0, 9)]),
        ];
        let mut cluster = Cluster::new(4);
        let dist: Vec<DistRelation<Count>> = rels
            .iter()
            .map(|r| DistRelation::scatter(&cluster, r))
            .collect();
        let got = star_like_query(&mut cluster, &q, &dist);
        assert!(got.is_empty());
    }
}

//! Line queries (§4): `∑_{A2..An} R1(A1,A2) ⋈ ⋯ ⋈ Rn(An,An+1)`, load
//! `O(N·OUT^{1/2}/p + (N·OUT/p)^{2/3} + (N+OUT)/p)` (Theorem 4).
//!
//! The recursion of §4.1:
//!
//! * values of `A2` with `R1`-degree `≥ √OUT` are *heavy*: the rest of the
//!   chain joined behind them stays within `N·√OUT` (Lemma 4's
//!   fan-out argument), so a right-to-left Yannakakis pass collapses
//!   `R2 ⋈ ⋯ ⋈ Rn` into `R(A2, An+1)` and the §3.2 matrix multiplication
//!   finishes `Q^heavy`;
//! * light `A2` values join `R1 ⋈ R2` into `R(A1, A3)` of size `≤ N·√OUT`
//!   and recurse on the shortened chain — `Q^light`;
//! * the two outputs aggregate by `(A1, A_{n+1})` (step 4).
//!
//! Base case `n = 2` is Theorem 1's dispatcher.

use crate::common::union_aggregate;
use mpcjoin_matmul::matmul;
use mpcjoin_mpc::join::join_aggregate;
use mpcjoin_mpc::{Cluster, DistRelation};
use mpcjoin_query::{Edge, TreeQuery};
use mpcjoin_relation::{Attr, Row, Schema};
use mpcjoin_semiring::Semiring;
use mpcjoin_sketch::estimate_out_chain_default;
use mpcjoin_yannakakis::remove_dangling;

/// Evaluate a line query. `rels[i]` must be a binary relation over
/// `{attrs[i], attrs[i+1]}` (either column order). Output schema:
/// `(attrs[0], attrs[n])`.
pub fn line_query<S: Semiring>(
    cluster: &mut Cluster,
    rels: &[DistRelation<S>],
    attrs: &[Attr],
) -> DistRelation<S> {
    let n = rels.len();
    assert!(n >= 2, "a line query has at least two relations");
    assert_eq!(attrs.len(), n + 1);
    let out_schema = Schema::binary(attrs[0], attrs[n]);

    if n == 2 {
        let (result, _) = matmul(cluster, &rels[0], &rels[1]);
        return reorder_binary(result, &out_schema);
    }

    // Remove dangling tuples over the whole chain.
    cluster.mark_phase("line: dangling removal");
    let q = TreeQuery::new(
        (0..n)
            .map(|i| Edge::binary(attrs[i], attrs[i + 1]))
            .collect(),
        [attrs[0], attrs[n]],
    );
    let reduced = remove_dangling(cluster, &q, rels);
    if reduced.iter().any(DistRelation::is_empty) {
        return DistRelation::empty(cluster, out_schema);
    }

    // Constant-factor OUT approximation (§2.2).
    cluster.mark_phase("line: §2.2 OUT estimation");
    let est = estimate_out_chain_default(cluster, &reduced.iter().collect::<Vec<_>>(), attrs);
    let threshold = ((est.total.max(1) as f64).sqrt().ceil() as u64).max(1);

    // Step 1: classify A2 values by R1-degree.
    cluster.mark_phase("line: heavy/light classification");
    let deg_a2 = reduced[0].degrees(cluster, attrs[1]);
    let heavy_catalog = deg_a2.map_local(move |_, items| {
        items
            .into_iter()
            .map(|(v, d)| (v, d >= threshold))
            .collect::<Vec<_>>()
    });

    let split = |cluster: &mut Cluster, rel: &DistRelation<S>, want_heavy: bool| {
        let attached = rel.attach_stat(
            cluster,
            &[attrs[1]],
            heavy_catalog.clone().map(|(v, h)| (vec![v], h)),
        );
        let data = attached.map_local(|_, items| {
            items
                .into_iter()
                .filter_map(|(entry, heavy)| {
                    (heavy.unwrap_or(false) == want_heavy).then_some(entry)
                })
                .collect::<Vec<_>>()
        });
        DistRelation::from_distributed(rel.schema().clone(), data)
    };

    let mut fragments = Vec::new();

    // --- Step 2: Q^heavy. ---
    cluster.mark_phase("line: Q^heavy");
    let r1_heavy = split(cluster, &reduced[0], true);
    let r2_heavy = split(cluster, &reduced[1], true);
    if !r1_heavy.is_empty() && !r2_heavy.is_empty() {
        // Reduce the heavy subquery's dangling tuples.
        let mut heavy_rels: Vec<DistRelation<S>> = Vec::with_capacity(n);
        heavy_rels.push(r1_heavy);
        heavy_rels.push(r2_heavy);
        heavy_rels.extend(reduced[2..].iter().cloned());
        let heavy_rels = remove_dangling(cluster, &q, &heavy_rels);
        if !heavy_rels.iter().any(DistRelation::is_empty) {
            // (2.1) right-to-left Yannakakis: R(A_i, A_{n+1}).
            let mut right = heavy_rels[n - 1].clone();
            for i in (1..n - 1).rev() {
                right = join_aggregate(cluster, &heavy_rels[i], &right, &[attrs[i], attrs[n]]);
            }
            // (2.2) matrix multiplication with R1^heavy.
            if !right.is_empty() {
                let (out_heavy, _) = matmul(cluster, &heavy_rels[0], &right);
                fragments.push(out_heavy);
            }
        }
    }

    // --- Step 3: Q^light. ---
    cluster.mark_phase("line: Q^light");
    let r1_light = split(cluster, &reduced[0], false);
    let r2_light = split(cluster, &reduced[1], false);
    if !r1_light.is_empty() && !r2_light.is_empty() {
        // (3.1) collapse the first hop: R(A1, A3).
        let first = join_aggregate(cluster, &r1_light, &r2_light, &[attrs[0], attrs[2]]);
        if !first.is_empty() {
            // (3.2) recurse on the shortened chain.
            let mut chain: Vec<DistRelation<S>> = vec![first];
            chain.extend(reduced[2..].iter().cloned());
            let mut chain_attrs = vec![attrs[0]];
            chain_attrs.extend_from_slice(&attrs[2..]);
            let out_light = line_query(cluster, &chain, &chain_attrs);
            fragments.push(out_light);
        }
    }

    // --- Step 4: aggregate the two subqueries. ---
    cluster.mark_phase("line: combine fragments");
    union_aggregate(cluster, out_schema, fragments)
}

/// Reorder a relation's columns to the requested schema (local-only).
pub(crate) fn reorder_binary<S: Semiring>(
    rel: DistRelation<S>,
    target: &Schema,
) -> DistRelation<S> {
    if rel.schema() == target {
        return rel;
    }
    let pos = rel.schema().positions_of(target.attrs());
    let data = rel
        .data()
        .clone()
        .map(move |(row, s): (Row, S)| (pos.iter().map(|&i| row[i]).collect(), s));
    DistRelation::from_distributed(target.clone(), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_relation::Relation;
    use mpcjoin_semiring::{Count, TropicalMin, XorRing};
    use mpcjoin_yannakakis::sequential_join_aggregate;

    fn attrs(n: usize) -> Vec<Attr> {
        (0..=n as u32).map(Attr).collect()
    }

    fn check<SR: Semiring>(rels: Vec<Relation<SR>>, p: usize) -> Cluster {
        let n = rels.len();
        let ats = attrs(n);
        let q = TreeQuery::new(
            (0..n).map(|i| Edge::binary(ats[i], ats[i + 1])).collect(),
            [ats[0], ats[n]],
        );
        let expect = sequential_join_aggregate(&q, &rels);
        let mut cluster = Cluster::new(p);
        let dist: Vec<DistRelation<SR>> = rels
            .iter()
            .map(|r| DistRelation::scatter(&cluster, r))
            .collect();
        let got = line_query(&mut cluster, &dist, &ats);
        assert!(
            got.gather().semantically_eq(&expect),
            "line query diverged from oracle"
        );
        cluster
    }

    #[test]
    fn three_hop_random() {
        let ats = attrs(3);
        check::<Count>(
            vec![
                Relation::binary_ones(ats[0], ats[1], (0..80u64).map(|i| (i % 20, i % 9))),
                Relation::binary_ones(ats[1], ats[2], (0..80u64).map(|i| (i % 9, i % 11))),
                Relation::binary_ones(ats[2], ats[3], (0..80u64).map(|i| (i % 11, i % 25))),
            ],
            8,
        );
    }

    #[test]
    fn four_hop_with_skewed_middle() {
        let ats = attrs(4);
        let mut r1 = Vec::new();
        // One A2 value of huge degree (heavy path) plus light fringe.
        for i in 0..60u64 {
            r1.push((i, 0));
            r1.push((i, 1 + i % 4));
        }
        check::<Count>(
            vec![
                Relation::binary_ones(ats[0], ats[1], r1),
                Relation::binary_ones(ats[1], ats[2], (0..40u64).map(|i| (i % 5, i % 7))),
                Relation::binary_ones(ats[2], ats[3], (0..40u64).map(|i| (i % 7, i % 6))),
                Relation::binary_ones(ats[3], ats[4], (0..40u64).map(|i| (i % 6, i % 30))),
            ],
            8,
        );
    }

    #[test]
    fn tropical_shortest_path_three_hops() {
        let ats = attrs(3);
        let layer = |seed: u64, from: u64, to: u64| {
            Relation::from_entries(
                Schema::binary(ats[seed as usize], ats[seed as usize + 1]),
                (0..from * to)
                    .map(|i| {
                        (
                            vec![i % from, i % to],
                            TropicalMin::finite(((i * 7 + seed) % 13) as i64),
                        )
                    })
                    .collect::<Vec<_>>(),
            )
            .coalesce()
        };
        check::<TropicalMin>(vec![layer(0, 6, 5), layer(1, 5, 4), layer(2, 4, 7)], 4);
    }

    #[test]
    fn xor_catches_duplicate_paths() {
        let ats = attrs(3);
        check::<XorRing>(
            vec![
                Relation::binary_ones(ats[0], ats[1], (0..50u64).map(|i| (i % 10, i % 6))),
                Relation::binary_ones(ats[1], ats[2], (0..50u64).map(|i| (i % 6, i % 8))),
                Relation::binary_ones(ats[2], ats[3], (0..50u64).map(|i| (i % 8, i % 12))),
            ],
            8,
        );
    }

    #[test]
    fn dangling_chain_is_empty() {
        let ats = attrs(3);
        check::<Count>(
            vec![
                Relation::binary_ones(ats[0], ats[1], [(1, 10)]),
                Relation::binary_ones(ats[1], ats[2], [(11, 20)]),
                Relation::binary_ones(ats[2], ats[3], [(20, 30)]),
            ],
            4,
        );
    }

    #[test]
    fn five_hop_chain() {
        let ats = attrs(5);
        let rels: Vec<Relation<Count>> = (0..5)
            .map(|j| {
                Relation::binary_ones(
                    ats[j],
                    ats[j + 1],
                    (0..30u64).map(move |i| ((i * (j as u64 + 3)) % 8, (i * 5) % 8)),
                )
            })
            .collect();
        check::<Count>(rels, 4);
    }
}

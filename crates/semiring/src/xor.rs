//! The two-element field GF(2) viewed as a semiring.

use crate::Semiring;

/// GF(2): `⊕ = xor`, `⊗ = and`.
///
/// This is a field (hence a semiring), but its addition has *torsion*:
/// `a ⊕ a = 0`. An algorithm that aggregates some join result an even
/// number of times will silently produce `0` here while looking plausible
/// under idempotent semirings — so `XorRing` is the sharpest cheap detector
/// of duplicated aggregation paths in the test suite. Semantically it
/// computes the *parity* of the number of join results per output group.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct XorRing(pub bool);

impl Semiring for XorRing {
    const IDEMPOTENT_ADD: bool = false;

    fn zero() -> Self {
        XorRing(false)
    }

    fn one() -> Self {
        XorRing(true)
    }

    fn add(&self, rhs: &Self) -> Self {
        XorRing(self.0 ^ rhs.0)
    }

    fn mul(&self, rhs: &Self) -> Self {
        XorRing(self.0 & rhs.0)
    }
}

impl From<bool> for XorRing {
    fn from(v: bool) -> Self {
        XorRing(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torsion() {
        let one = XorRing(true);
        assert_eq!(one.add(&one), XorRing::zero());
    }

    #[test]
    fn parity_of_three() {
        let s = crate::sum([XorRing(true), XorRing(true), XorRing(true)]);
        assert_eq!(s, XorRing(true));
    }
}

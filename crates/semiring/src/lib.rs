//! Commutative semirings for annotated relations.
//!
//! Join-aggregate queries in Hu & Yi (PODS 2020) are defined over an
//! arbitrary *commutative semiring* `(R, ⊕, ⊗)`: every input tuple carries an
//! annotation from `R`, the annotation of a join result is the ⊗-product of
//! its constituent tuples' annotations, and the query output aggregates the
//! annotations of join results within each output group with ⊕.
//!
//! Crucially, semirings need not have additive inverses, which rules out
//! fast (Strassen-style) matrix multiplication and makes the elementary-
//! product counting arguments of the paper's lower bounds applicable.
//!
//! This crate provides the [`Semiring`] trait and a collection of concrete
//! instances that between them cover the behaviours the algorithms must be
//! correct under:
//!
//! * [`Count`] — the counting semiring `(u64, +, ×)` (a full ring; detects
//!   any accidental double-aggregation in an algorithm),
//! * [`BoolRing`] — boolean `(∨, ∧)`; idempotent; models join-project
//!   (conjunctive) queries,
//! * [`TropicalMin`] / [`MaxPlus`] — `(min, +)` and `(max, +)`; idempotent;
//!   model shortest/longest path style aggregations,
//! * [`Bottleneck`] — `(max, min)`; idempotent; models widest-path,
//! * [`XorRing`] — GF(2) `(⊕, ∧)`; *not* idempotent and has torsion, so it
//!   catches a different class of double-counting bugs than [`Count`],
//! * [`WhyProv`] — why-provenance `(P(P(X)), ∪, pairwise ∪)`; idempotent;
//!   models provenance tracking (Green, Karvounarakis, Tannen, PODS'07).
//!
//! The paper's lower bounds (Theorems 2 and 3) hold already for *idempotent*
//! semirings (`a ⊕ a = a`); instances advertise idempotence through
//! [`Semiring::IDEMPOTENT_ADD`] so tests and benchmarks can select
//! appropriately.

mod boolean;
mod bottleneck;
mod count;
mod mincount;
mod product;
mod provenance;
mod tropical;
mod viterbi;
mod xor;

pub use boolean::BoolRing;
pub use bottleneck::Bottleneck;
pub use count::Count;
pub use mincount::MinCount;
pub use product::Prod;
pub use provenance::WhyProv;
pub use tropical::{MaxPlus, TropicalMin};
pub use viterbi::{Viterbi, ONE_SCALE};
pub use xor::XorRing;

use std::fmt::Debug;

/// A commutative semiring `(R, ⊕, ⊗, 0, 1)`.
///
/// Laws (checked by the property-test suite in this crate, and re-checkable
/// for downstream instances via [`check_laws`]):
///
/// * `(R, ⊕, 0)` is a commutative monoid,
/// * `(R, ⊗, 1)` is a commutative monoid,
/// * `⊗` distributes over `⊕`,
/// * `0` annihilates: `a ⊗ 0 = 0`.
///
/// Implementations must be cheap to clone; the MPC simulator treats one
/// semiring element as one unit of communication regardless of its in-memory
/// size, mirroring the accounting convention of the paper (§1.3).
pub trait Semiring: Clone + Debug + PartialEq + Send + Sync + 'static {
    /// Whether `⊕` is idempotent (`a ⊕ a = a`). The paper's matrix
    /// multiplication lower bounds hold even restricted to idempotent
    /// semirings, so experiments that exercise the hard instances prefer
    /// idempotent annotations.
    const IDEMPOTENT_ADD: bool;

    /// The additive identity (annihilator for `⊗`).
    fn zero() -> Self;

    /// The multiplicative identity.
    fn one() -> Self;

    /// The semiring addition `⊕`, used to aggregate annotations of join
    /// results that share the same output projection.
    fn add(&self, rhs: &Self) -> Self;

    /// The semiring multiplication `⊗`, used to combine the annotations of
    /// the tuples forming one join result.
    fn mul(&self, rhs: &Self) -> Self;

    /// In-place addition; override when accumulation can reuse storage.
    fn add_assign(&mut self, rhs: &Self) {
        *self = self.add(rhs);
    }

    /// In-place multiplication.
    fn mul_assign(&mut self, rhs: &Self) {
        *self = self.mul(rhs);
    }

    /// Whether this element is the additive identity.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }
}

/// Fold an iterator with `⊕`; returns [`Semiring::zero`] when empty.
pub fn sum<S: Semiring>(items: impl IntoIterator<Item = S>) -> S {
    let mut acc = S::zero();
    for x in items {
        acc.add_assign(&x);
    }
    acc
}

/// Fold an iterator with `⊗`; returns [`Semiring::one`] when empty.
pub fn product<S: Semiring>(items: impl IntoIterator<Item = S>) -> S {
    let mut acc = S::one();
    for x in items {
        acc.mul_assign(&x);
    }
    acc
}

/// Check the semiring laws on a concrete triple of elements, panicking with
/// a descriptive message on the first violated law.
///
/// Downstream crates defining their own [`Semiring`] instances can drive
/// this from a property test to obtain the same guarantees as the built-in
/// instances.
pub fn check_laws<S: Semiring>(a: &S, b: &S, c: &S) {
    let zero = S::zero();
    let one = S::one();
    assert_eq!(a.add(b), b.add(a), "⊕ must be commutative");
    assert_eq!(a.add(&b.add(c)), a.add(b).add(c), "⊕ must be associative");
    assert_eq!(a.add(&zero), *a, "0 must be the ⊕ identity");
    assert_eq!(a.mul(b), b.mul(a), "⊗ must be commutative");
    assert_eq!(a.mul(&b.mul(c)), a.mul(b).mul(c), "⊗ must be associative");
    assert_eq!(a.mul(&one), *a, "1 must be the ⊗ identity");
    assert_eq!(
        a.mul(&b.add(c)),
        a.mul(b).add(&a.mul(c)),
        "⊗ must distribute over ⊕"
    );
    assert_eq!(a.mul(&zero), zero, "0 must annihilate under ⊗");
    if S::IDEMPOTENT_ADD {
        assert_eq!(a.add(a), *a, "instance advertises idempotent ⊕");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_of_empty_is_zero() {
        let s: Count = sum(std::iter::empty());
        assert_eq!(s, Count::zero());
    }

    #[test]
    fn product_of_empty_is_one() {
        let p: Count = product(std::iter::empty());
        assert_eq!(p, Count::one());
    }

    #[test]
    fn sum_accumulates() {
        let s: Count = sum([Count::from(2), Count::from(3), Count::from(5)]);
        assert_eq!(s, Count::from(10));
    }

    #[test]
    fn product_accumulates() {
        let p: Count = product([Count::from(2), Count::from(3), Count::from(5)]);
        assert_eq!(p, Count::from(30));
    }

    #[test]
    fn is_zero_detects_zero() {
        assert!(Count::zero().is_zero());
        assert!(!Count::one().is_zero());
        assert!(TropicalMin::zero().is_zero());
        assert!(!TropicalMin::one().is_zero());
    }
}

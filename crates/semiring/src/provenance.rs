//! The why-provenance semiring over tuple identifiers.

use crate::Semiring;
use std::collections::BTreeSet;

/// A *witness*: one minimal set of input tuple ids that jointly derive an
/// output tuple.
pub type Witness = BTreeSet<u32>;

/// Why-provenance: sets of witnesses, `(P(P(X)), ∪, ⋓, ∅, {∅})`.
///
/// * `⊕ = ∪` — alternative derivations accumulate as alternative witnesses,
/// * `A ⊗ B = { a ∪ b : a ∈ A, b ∈ B }` — joining combines one witness from
///   each side,
/// * `0 = ∅` (no derivation), `1 = {∅}` (the vacuous derivation).
///
/// This is the classical *Why(X)* semiring of Green, Karvounarakis & Tannen
/// (PODS'07), restricted to tuple ids drawn from `u32`. It is idempotent
/// and **not** absorptive (we do not minimize witness sets), which keeps the
/// laws exact. Tag input tuples with singleton witnesses via
/// [`WhyProv::tuple`]; the query output then carries, per output tuple, the
/// full set of input-tuple combinations that produced it.
///
/// Witness sets can grow combinatorially; intended for provenance-focused
/// examples and tests on modest instances, not for the large benchmarks.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct WhyProv(BTreeSet<Witness>);

impl WhyProv {
    /// The annotation of input tuple `id`: the single witness `{id}`.
    pub fn tuple(id: u32) -> Self {
        let mut w = Witness::new();
        w.insert(id);
        WhyProv(BTreeSet::from([w]))
    }

    /// The set of witnesses.
    pub fn witnesses(&self) -> &BTreeSet<Witness> {
        &self.0
    }

    /// Number of distinct witnesses.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether there is no derivation (the semiring zero).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Construct directly from witnesses (useful in tests).
    pub fn from_witnesses<I: IntoIterator<Item = Witness>>(ws: I) -> Self {
        WhyProv(ws.into_iter().collect())
    }
}

impl Semiring for WhyProv {
    const IDEMPOTENT_ADD: bool = true;

    fn zero() -> Self {
        WhyProv(BTreeSet::new())
    }

    fn one() -> Self {
        WhyProv(BTreeSet::from([Witness::new()]))
    }

    fn add(&self, rhs: &Self) -> Self {
        WhyProv(self.0.union(&rhs.0).cloned().collect())
    }

    fn mul(&self, rhs: &Self) -> Self {
        let mut out = BTreeSet::new();
        for a in &self.0 {
            for b in &rhs.0 {
                out.insert(a.union(b).cloned().collect());
            }
        }
        WhyProv(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_combines_witnesses() {
        let a = WhyProv::tuple(1);
        let b = WhyProv::tuple(2);
        let ab = a.mul(&b);
        assert_eq!(ab.len(), 1);
        assert!(ab.witnesses().contains(&Witness::from([1, 2])));
    }

    #[test]
    fn alternatives_union() {
        let p1 = WhyProv::tuple(1).mul(&WhyProv::tuple(2));
        let p2 = WhyProv::tuple(1).mul(&WhyProv::tuple(3));
        let both = p1.add(&p2);
        assert_eq!(both.len(), 2);
    }

    #[test]
    fn zero_annihilates_one_identity() {
        let x = WhyProv::tuple(9);
        assert_eq!(x.mul(&WhyProv::zero()), WhyProv::zero());
        assert_eq!(x.mul(&WhyProv::one()), x);
        assert_eq!(x.add(&WhyProv::zero()), x);
    }

    #[test]
    fn idempotent_add() {
        let x = WhyProv::tuple(4).add(&WhyProv::tuple(5));
        assert_eq!(x.add(&x), x);
    }
}

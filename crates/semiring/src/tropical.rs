//! Tropical semirings: `(min, +)` and `(max, +)` over extended integers.

use crate::Semiring;

/// The tropical min-plus semiring over `Z ∪ {+∞}`: `⊕ = min`, `⊗ = +`.
///
/// `0 = +∞`, `1 = 0`. With edge weights as annotations, the chain matrix
/// product of §4 (line queries) computes shortest-path distances between the
/// two boundary attributes. Integers are used rather than floats so that
/// `Eq` is exact and oracle comparisons are bit-precise.
///
/// Finite values are clamped to `±FIN_MAX` under `⊗` so that `+∞` remains
/// the unique absorbing "infinity"; workloads stay far below the clamp.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TropicalMin(i64);

/// Largest magnitude a finite tropical value may take; sums clamp here.
/// Chosen so that `FIN_MAX + FIN_MAX` cannot overflow `i64`.
const FIN_MAX: i64 = i64::MAX / 4;

/// Sentinel for `+∞` (the additive identity of min-plus).
const INF: i64 = i64::MAX;

impl TropicalMin {
    /// A finite tropical value. Panics if `|v|` exceeds the finite range.
    pub fn finite(v: i64) -> Self {
        assert!(
            v.abs() <= FIN_MAX,
            "tropical value {v} outside finite range"
        );
        TropicalMin(v)
    }

    /// The `+∞` element (annihilated paths / additive identity).
    pub fn infinity() -> Self {
        TropicalMin(INF)
    }

    /// The finite value, or `None` for `+∞`.
    pub fn value(&self) -> Option<i64> {
        (self.0 != INF).then_some(self.0)
    }
}

impl Semiring for TropicalMin {
    const IDEMPOTENT_ADD: bool = true;

    fn zero() -> Self {
        Self::infinity()
    }

    fn one() -> Self {
        TropicalMin(0)
    }

    fn add(&self, rhs: &Self) -> Self {
        TropicalMin(self.0.min(rhs.0))
    }

    fn mul(&self, rhs: &Self) -> Self {
        if self.0 == INF || rhs.0 == INF {
            Self::infinity()
        } else {
            TropicalMin((self.0 + rhs.0).clamp(-FIN_MAX, FIN_MAX))
        }
    }
}

/// The max-plus semiring over `Z ∪ {-∞}`: `⊕ = max`, `⊗ = +`.
///
/// `0 = -∞`, `1 = 0`. Computes longest / most-profitable paths; the dual of
/// [`TropicalMin`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MaxPlus(i64);

/// Sentinel for `-∞` (the additive identity of max-plus).
const NEG_INF: i64 = i64::MIN;

impl MaxPlus {
    /// A finite max-plus value. Panics if `|v|` exceeds the finite range.
    pub fn finite(v: i64) -> Self {
        assert!(
            v.abs() <= FIN_MAX,
            "max-plus value {v} outside finite range"
        );
        MaxPlus(v)
    }

    /// The `-∞` element.
    pub fn neg_infinity() -> Self {
        MaxPlus(NEG_INF)
    }

    /// The finite value, or `None` for `-∞`.
    pub fn value(&self) -> Option<i64> {
        (self.0 != NEG_INF).then_some(self.0)
    }
}

impl Semiring for MaxPlus {
    const IDEMPOTENT_ADD: bool = true;

    fn zero() -> Self {
        Self::neg_infinity()
    }

    fn one() -> Self {
        MaxPlus(0)
    }

    fn add(&self, rhs: &Self) -> Self {
        MaxPlus(self.0.max(rhs.0))
    }

    fn mul(&self, rhs: &Self) -> Self {
        if self.0 == NEG_INF || rhs.0 == NEG_INF {
            Self::neg_infinity()
        } else {
            MaxPlus((self.0 + rhs.0).clamp(-FIN_MAX, FIN_MAX))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_plus_shortest_path_step() {
        // min(3 + 4, 2 + 10) = 7
        let via_a = TropicalMin::finite(3).mul(&TropicalMin::finite(4));
        let via_b = TropicalMin::finite(2).mul(&TropicalMin::finite(10));
        assert_eq!(via_a.add(&via_b), TropicalMin::finite(7));
    }

    #[test]
    fn infinity_annihilates() {
        let x = TropicalMin::finite(5);
        assert_eq!(x.mul(&TropicalMin::infinity()), TropicalMin::infinity());
        assert_eq!(x.add(&TropicalMin::infinity()), x);
    }

    #[test]
    fn max_plus_duality() {
        let x = MaxPlus::finite(5);
        assert_eq!(x.mul(&MaxPlus::neg_infinity()), MaxPlus::neg_infinity());
        assert_eq!(x.add(&MaxPlus::neg_infinity()), x);
        assert_eq!(x.add(&MaxPlus::finite(9)), MaxPlus::finite(9));
    }

    #[test]
    fn value_accessors() {
        assert_eq!(TropicalMin::finite(3).value(), Some(3));
        assert_eq!(TropicalMin::infinity().value(), None);
        assert_eq!(MaxPlus::finite(-3).value(), Some(-3));
        assert_eq!(MaxPlus::neg_infinity().value(), None);
    }

    #[test]
    #[should_panic(expected = "outside finite range")]
    fn finite_range_enforced() {
        let _ = TropicalMin::finite(i64::MAX);
    }
}

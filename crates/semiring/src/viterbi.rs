//! The Viterbi (max-times) semiring over fixed-point probabilities.

use crate::Semiring;

/// Fixed-point scale: probability 1.0 is represented as `10^9`.
pub const ONE_SCALE: u64 = 1_000_000_000;

/// The Viterbi semiring: probabilities under `⊕ = max`, `⊗ = ×`.
///
/// Probabilities are fixed-point integers (scale [`ONE_SCALE`]) so that
/// equality is exact and oracle comparisons are bit-precise; `⊗` rounds
/// *down*, which preserves associativity-up-to-rounding deterministically
/// (the same expression always evaluates the same way) and keeps the
/// semiring laws exact for the values used in tests (products of powers
/// of 1/2, 1/5, 1/10 stay representable).
///
/// With transition probabilities as annotations, a line query computes
/// the most probable path between its boundary attributes — the Viterbi
/// decoding of a hidden-Markov-style layered model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Viterbi(u64);

impl Viterbi {
    /// A probability from a fixed-point numerator over [`ONE_SCALE`].
    /// Panics above 1.0 (not a probability).
    pub fn prob(fixed: u64) -> Self {
        assert!(fixed <= ONE_SCALE, "probability {fixed} above 1.0");
        Viterbi(fixed)
    }

    /// The fixed-point numerator.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// As a float, for display.
    pub fn as_f64(&self) -> f64 {
        self.0 as f64 / ONE_SCALE as f64
    }
}

impl Semiring for Viterbi {
    const IDEMPOTENT_ADD: bool = true;

    fn zero() -> Self {
        Viterbi(0)
    }

    fn one() -> Self {
        Viterbi(ONE_SCALE)
    }

    fn add(&self, rhs: &Self) -> Self {
        Viterbi(self.0.max(rhs.0))
    }

    fn mul(&self, rhs: &Self) -> Self {
        Viterbi(((self.0 as u128 * rhs.0 as u128) / ONE_SCALE as u128) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_probable_path() {
        let half = Viterbi::prob(ONE_SCALE / 2);
        let tenth = Viterbi::prob(ONE_SCALE / 10);
        // Paths 0.5 · 0.5 = 0.25 vs 0.1 · 1.0 = 0.1: max is 0.25.
        let p1 = half.mul(&half);
        let p2 = tenth.mul(&Viterbi::one());
        assert_eq!(p1.add(&p2), Viterbi::prob(ONE_SCALE / 4));
    }

    #[test]
    fn identities() {
        let x = Viterbi::prob(ONE_SCALE / 5);
        assert_eq!(x.add(&Viterbi::zero()), x);
        assert_eq!(x.mul(&Viterbi::one()), x);
        assert_eq!(x.mul(&Viterbi::zero()), Viterbi::zero());
    }

    #[test]
    #[should_panic(expected = "above 1.0")]
    fn rejects_superunit() {
        let _ = Viterbi::prob(ONE_SCALE + 1);
    }
}

//! The shortest-path-counting semiring `(min, +)` × multiplicity.

use crate::Semiring;

/// "Shortest distance, and how many derivations achieve it": elements are
/// `(cost, count)` with
///
/// * `⊕`: keep the smaller cost; on ties, add the counts,
/// * `⊗`: add the costs, multiply the counts,
/// * `0 = (+∞, 0)`, `1 = (0, 1)`.
///
/// This is the classical lexicographic refinement of min-plus (sometimes
/// called the *counting tropical* semiring); over a line query it computes
/// both the shortest-path distance and the number of shortest paths per
/// output pair. It is **not** idempotent (`(c,1) ⊕ (c,1) = (c,2)`), so it
/// doubles as another duplicate-aggregation detector in tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MinCount {
    cost: i64,
    count: u64,
}

/// Sentinel for `+∞`.
const INF: i64 = i64::MAX;

/// Finite-cost clamp so `⊗` cannot overflow.
const FIN_MAX: i64 = i64::MAX / 4;

impl MinCount {
    /// A finite `(cost, count)` element.
    pub fn new(cost: i64, count: u64) -> Self {
        assert!(cost.abs() <= FIN_MAX, "cost {cost} outside finite range");
        assert!(count > 0, "finite elements carry a positive count");
        MinCount { cost, count }
    }

    /// A single path of the given cost.
    pub fn path(cost: i64) -> Self {
        Self::new(cost, 1)
    }

    /// `(cost, count)` if finite.
    pub fn get(&self) -> Option<(i64, u64)> {
        (self.cost != INF).then_some((self.cost, self.count))
    }
}

impl Semiring for MinCount {
    const IDEMPOTENT_ADD: bool = false;

    fn zero() -> Self {
        MinCount {
            cost: INF,
            count: 0,
        }
    }

    fn one() -> Self {
        MinCount { cost: 0, count: 1 }
    }

    fn add(&self, rhs: &Self) -> Self {
        match self.cost.cmp(&rhs.cost) {
            std::cmp::Ordering::Less => *self,
            std::cmp::Ordering::Greater => *rhs,
            std::cmp::Ordering::Equal => MinCount {
                cost: self.cost,
                count: self.count.wrapping_add(rhs.count),
            },
        }
    }

    fn mul(&self, rhs: &Self) -> Self {
        if self.cost == INF || rhs.cost == INF {
            return Self::zero();
        }
        MinCount {
            cost: (self.cost + rhs.cost).clamp(-FIN_MAX, FIN_MAX),
            count: self.count.wrapping_mul(rhs.count),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_tied_shortest_paths() {
        // Two paths of cost 7, one of cost 9.
        let s = MinCount::path(7)
            .add(&MinCount::path(9))
            .add(&MinCount::path(7));
        assert_eq!(s.get(), Some((7, 2)));
    }

    #[test]
    fn concatenation_multiplies_counts() {
        let a = MinCount::new(3, 2); // 2 ways to pay 3
        let b = MinCount::new(4, 5); // 5 ways to pay 4
        assert_eq!(a.mul(&b).get(), Some((7, 10)));
    }

    #[test]
    fn zero_annihilates() {
        let x = MinCount::path(1);
        assert_eq!(x.mul(&MinCount::zero()), MinCount::zero());
        assert_eq!(x.add(&MinCount::zero()), x);
    }

    #[test]
    fn not_idempotent() {
        let x = MinCount::path(4);
        assert_ne!(x.add(&x), x);
    }
}

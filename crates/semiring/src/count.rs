//! The counting semiring `(u64, +, ×)` with wrapping arithmetic.

use crate::Semiring;

/// The counting semiring: natural numbers under `+` and `×`.
///
/// Arithmetic wraps modulo `2^64`, so `Count` is exactly the commutative
/// ring `Z/2^64` and the semiring laws hold *exactly* (no saturation edge
/// cases). With all input annotations set to `1`, a join-aggregate query
/// over `Count` computes `COUNT(*) GROUP BY y`, and with `y = ∅` the full
/// join size `|Q(R)|` — the paper's §1.1 examples.
///
/// Because `Count` is **not** idempotent, comparing a distributed
/// algorithm's output against the sequential oracle under `Count` detects
/// any aggregation that is accidentally applied twice (e.g. a tuple routed
/// to two servers and summed on both).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Count(pub u64);

impl Semiring for Count {
    const IDEMPOTENT_ADD: bool = false;

    fn zero() -> Self {
        Count(0)
    }

    fn one() -> Self {
        Count(1)
    }

    fn add(&self, rhs: &Self) -> Self {
        Count(self.0.wrapping_add(rhs.0))
    }

    fn mul(&self, rhs: &Self) -> Self {
        Count(self.0.wrapping_mul(rhs.0))
    }
}

impl From<u64> for Count {
    fn from(v: u64) -> Self {
        Count(v)
    }
}

impl std::fmt::Display for Count {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        let x = Count(7);
        assert_eq!(x.add(&Count::zero()), x);
        assert_eq!(x.mul(&Count::one()), x);
        assert_eq!(x.mul(&Count::zero()), Count::zero());
    }

    #[test]
    fn wrapping_keeps_laws_at_boundary() {
        let big = Count(u64::MAX);
        // (MAX + 1) wraps to 0; distributivity must still hold exactly.
        let a = Count(2);
        assert_eq!(
            a.mul(&big.add(&Count(1))),
            a.mul(&big).add(&a.mul(&Count(1)))
        );
    }

    #[test]
    fn not_idempotent() {
        let x = Count(3);
        assert_ne!(x.add(&x), x);
    }
}

//! The product of two semirings.

use crate::Semiring;

/// Component-wise product semiring `S1 × S2`: both operations apply
/// per component, identities pair the components' identities.
///
/// Products let one pass compute two aggregates at once — e.g.
/// `Prod<Count, TropicalMin>` yields the group size *and* the minimum
/// weight per output group in a single query execution, at one unit of
/// communication per element (the model's accounting counts semiring
/// elements, not bytes).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prod<S1, S2>(pub S1, pub S2);

impl<S1: Semiring, S2: Semiring> Semiring for Prod<S1, S2> {
    const IDEMPOTENT_ADD: bool = S1::IDEMPOTENT_ADD && S2::IDEMPOTENT_ADD;

    fn zero() -> Self {
        Prod(S1::zero(), S2::zero())
    }

    fn one() -> Self {
        Prod(S1::one(), S2::one())
    }

    fn add(&self, rhs: &Self) -> Self {
        Prod(self.0.add(&rhs.0), self.1.add(&rhs.1))
    }

    fn mul(&self, rhs: &Self) -> Self {
        Prod(self.0.mul(&rhs.0), self.1.mul(&rhs.1))
    }

    fn add_assign(&mut self, rhs: &Self) {
        self.0.add_assign(&rhs.0);
        self.1.add_assign(&rhs.1);
    }

    fn mul_assign(&mut self, rhs: &Self) {
        self.0.mul_assign(&rhs.0);
        self.1.mul_assign(&rhs.1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BoolRing, Count, TropicalMin};

    #[test]
    fn componentwise_operations() {
        let a = Prod(Count(2), TropicalMin::finite(5));
        let b = Prod(Count(3), TropicalMin::finite(1));
        assert_eq!(a.add(&b), Prod(Count(5), TropicalMin::finite(1)));
        assert_eq!(a.mul(&b), Prod(Count(6), TropicalMin::finite(6)));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants under test are the point
    fn idempotence_is_conjunctive() {
        assert!(!<Prod<Count, BoolRing>>::IDEMPOTENT_ADD);
        assert!(<Prod<BoolRing, TropicalMin>>::IDEMPOTENT_ADD);
    }

    #[test]
    fn identities() {
        let x = Prod(Count(7), BoolRing(true));
        assert_eq!(x.add(&Prod::zero()), x);
        assert_eq!(x.mul(&Prod::one()), x);
        assert_eq!(x.mul(&Prod::zero()), Prod::zero());
    }
}

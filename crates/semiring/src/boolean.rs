//! The boolean semiring `({false, true}, ∨, ∧)`.

use crate::Semiring;

/// The boolean semiring: disjunction as `⊕`, conjunction as `⊗`.
///
/// Annotating every tuple with `true` turns a join-aggregate query into the
/// corresponding join-*project* (conjunctive) query: the output is the set
/// of distinct projections `π_y Q(R)`, each annotated `true`. This is the
/// semiring under which sparse matrix multiplication coincides with boolean
/// matrix multiplication / two-step reachability.
///
/// `∨` is idempotent, so `BoolRing` is a valid annotation domain for the
/// paper's idempotent-semiring lower-bound experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct BoolRing(pub bool);

impl Semiring for BoolRing {
    const IDEMPOTENT_ADD: bool = true;

    fn zero() -> Self {
        BoolRing(false)
    }

    fn one() -> Self {
        BoolRing(true)
    }

    fn add(&self, rhs: &Self) -> Self {
        BoolRing(self.0 || rhs.0)
    }

    fn mul(&self, rhs: &Self) -> Self {
        BoolRing(self.0 && rhs.0)
    }
}

impl From<bool> for BoolRing {
    fn from(v: bool) -> Self {
        BoolRing(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_table() {
        let t = BoolRing(true);
        let f = BoolRing(false);
        assert_eq!(t.add(&f), t);
        assert_eq!(f.add(&f), f);
        assert_eq!(t.mul(&t), t);
        assert_eq!(t.mul(&f), f);
    }

    #[test]
    fn idempotent() {
        for v in [BoolRing(true), BoolRing(false)] {
            assert_eq!(v.add(&v), v);
        }
    }
}

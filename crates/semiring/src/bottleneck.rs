//! The bottleneck (max-min) semiring.

use crate::Semiring;

/// The bottleneck semiring over `Z ∪ {±∞}`: `⊕ = max`, `⊗ = min`.
///
/// `0 = -∞`, `1 = +∞`. With edge capacities as annotations, a line query
/// computes the *widest path* (maximum bottleneck capacity) between the
/// boundary attributes. Both operations are idempotent, making this the
/// most "forgiving" semiring — useful as a contrast to [`crate::Count`] in
/// tests: an algorithm wrong only about multiplicities will pass under
/// `Bottleneck` and fail under `Count`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bottleneck(i64);

impl Bottleneck {
    /// A finite capacity. `i64::MIN`/`i64::MAX` are reserved as `∓∞`.
    pub fn finite(v: i64) -> Self {
        assert!(
            v != i64::MIN && v != i64::MAX,
            "capacity {v} collides with an infinity sentinel"
        );
        Bottleneck(v)
    }

    /// The finite capacity, or `None` for either infinity.
    pub fn value(&self) -> Option<i64> {
        (self.0 != i64::MIN && self.0 != i64::MAX).then_some(self.0)
    }
}

impl Semiring for Bottleneck {
    const IDEMPOTENT_ADD: bool = true;

    fn zero() -> Self {
        Bottleneck(i64::MIN)
    }

    fn one() -> Self {
        Bottleneck(i64::MAX)
    }

    fn add(&self, rhs: &Self) -> Self {
        Bottleneck(self.0.max(rhs.0))
    }

    fn mul(&self, rhs: &Self) -> Self {
        Bottleneck(self.0.min(rhs.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widest_path_step() {
        // Two paths with bottlenecks min(8,3)=3 and min(5,4)=4; widest is 4.
        let p1 = Bottleneck::finite(8).mul(&Bottleneck::finite(3));
        let p2 = Bottleneck::finite(5).mul(&Bottleneck::finite(4));
        assert_eq!(p1.add(&p2), Bottleneck::finite(4));
    }

    #[test]
    fn identities() {
        let x = Bottleneck::finite(7);
        assert_eq!(x.add(&Bottleneck::zero()), x);
        assert_eq!(x.mul(&Bottleneck::one()), x);
        assert_eq!(x.mul(&Bottleneck::zero()), Bottleneck::zero());
    }

    #[test]
    fn both_ops_idempotent() {
        let x = Bottleneck::finite(7);
        assert_eq!(x.add(&x), x);
        assert_eq!(x.mul(&x), x);
    }
}

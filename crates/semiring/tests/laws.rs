//! Property-based verification of the semiring laws for every instance.

use mpcjoin_semiring::{
    check_laws, BoolRing, Bottleneck, Count, MaxPlus, MinCount, Prod, Semiring, TropicalMin,
    Viterbi, WhyProv, XorRing, ONE_SCALE,
};
use proptest::prelude::*;

fn tropical_strategy() -> impl Strategy<Value = TropicalMin> {
    prop_oneof![
        5 => (-1_000_000i64..1_000_000).prop_map(TropicalMin::finite),
        1 => Just(TropicalMin::infinity()),
    ]
}

fn maxplus_strategy() -> impl Strategy<Value = MaxPlus> {
    prop_oneof![
        5 => (-1_000_000i64..1_000_000).prop_map(MaxPlus::finite),
        1 => Just(MaxPlus::neg_infinity()),
    ]
}

fn bottleneck_strategy() -> impl Strategy<Value = Bottleneck> {
    prop_oneof![
        5 => (-1_000_000i64..1_000_000).prop_map(Bottleneck::finite),
        1 => Just(Bottleneck::zero()),
        1 => Just(Bottleneck::one()),
    ]
}

fn mincount_strategy() -> impl Strategy<Value = MinCount> {
    prop_oneof![
        5 => ((-1_000_000i64..1_000_000), (1u64..1000)).prop_map(|(c, n)| MinCount::new(c, n)),
        1 => Just(MinCount::zero()),
    ]
}

/// Small powers of two stay exactly representable under the fixed-point
/// `⊗` (triple products need `2^{a+b+c} | 10^9`, i.e. exponents summing
/// to ≤ 9), keeping the associativity check exact. Distributivity holds
/// for *all* values because `max` commutes with the monotone `⊗`.
fn viterbi_strategy() -> impl Strategy<Value = Viterbi> {
    (0u32..=3).prop_map(|k| Viterbi::prob(ONE_SCALE >> k))
}

fn whyprov_strategy() -> impl Strategy<Value = WhyProv> {
    // Small sets of small witnesses keep ⊗ products tractable.
    proptest::collection::btree_set(proptest::collection::btree_set(0u32..8, 0..3), 0..3)
        .prop_map(WhyProv::from_witnesses)
}

proptest! {
    #[test]
    fn count_laws(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        check_laws(&Count(a), &Count(b), &Count(c));
    }

    #[test]
    fn bool_laws(a in any::<bool>(), b in any::<bool>(), c in any::<bool>()) {
        check_laws(&BoolRing(a), &BoolRing(b), &BoolRing(c));
    }

    #[test]
    fn xor_laws(a in any::<bool>(), b in any::<bool>(), c in any::<bool>()) {
        check_laws(&XorRing(a), &XorRing(b), &XorRing(c));
    }

    #[test]
    fn tropical_laws(a in tropical_strategy(), b in tropical_strategy(), c in tropical_strategy()) {
        check_laws(&a, &b, &c);
    }

    #[test]
    fn maxplus_laws(a in maxplus_strategy(), b in maxplus_strategy(), c in maxplus_strategy()) {
        check_laws(&a, &b, &c);
    }

    #[test]
    fn bottleneck_laws(
        a in bottleneck_strategy(),
        b in bottleneck_strategy(),
        c in bottleneck_strategy(),
    ) {
        check_laws(&a, &b, &c);
    }

    #[test]
    fn whyprov_laws(a in whyprov_strategy(), b in whyprov_strategy(), c in whyprov_strategy()) {
        check_laws(&a, &b, &c);
    }

    #[test]
    fn mincount_laws(a in mincount_strategy(), b in mincount_strategy(), c in mincount_strategy()) {
        check_laws(&a, &b, &c);
    }

    #[test]
    fn viterbi_laws(a in viterbi_strategy(), b in viterbi_strategy(), c in viterbi_strategy()) {
        check_laws(&a, &b, &c);
    }

    #[test]
    fn product_laws(
        (a1, a2) in (any::<u64>(), any::<bool>()),
        (b1, b2) in (any::<u64>(), any::<bool>()),
        (c1, c2) in (any::<u64>(), any::<bool>()),
    ) {
        check_laws(
            &Prod(Count(a1), BoolRing(a2)),
            &Prod(Count(b1), BoolRing(b2)),
            &Prod(Count(c1), BoolRing(c2)),
        );
    }

    #[test]
    fn sum_matches_fold(xs in proptest::collection::vec(any::<u64>(), 0..20)) {
        let expected = xs.iter().fold(0u64, |acc, x| acc.wrapping_add(*x));
        prop_assert_eq!(mpcjoin_semiring::sum(xs.into_iter().map(Count)), Count(expected));
    }

    #[test]
    fn product_matches_fold(xs in proptest::collection::vec(any::<u64>(), 0..20)) {
        let expected = xs.iter().fold(1u64, |acc, x| acc.wrapping_mul(*x));
        prop_assert_eq!(mpcjoin_semiring::product(xs.into_iter().map(Count)), Count(expected));
    }
}

//! Randomized verification of the semiring laws for every instance,
//! driven by the deterministic in-tree generator with fixed seeds.

use mpcjoin_mpc::DetRng;
use mpcjoin_semiring::{
    check_laws, BoolRing, Bottleneck, Count, MaxPlus, MinCount, Prod, Semiring, TropicalMin,
    Viterbi, WhyProv, XorRing, ONE_SCALE,
};
use std::collections::BTreeSet;

const CASES: u64 = 256;

fn signed(rng: &mut DetRng) -> i64 {
    rng.gen_range(0u64..2_000_000) as i64 - 1_000_000
}

fn tropical(rng: &mut DetRng) -> TropicalMin {
    if rng.gen_range(0u64..6) == 0 {
        TropicalMin::infinity()
    } else {
        TropicalMin::finite(signed(rng))
    }
}

fn maxplus(rng: &mut DetRng) -> MaxPlus {
    if rng.gen_range(0u64..6) == 0 {
        MaxPlus::neg_infinity()
    } else {
        MaxPlus::finite(signed(rng))
    }
}

fn bottleneck(rng: &mut DetRng) -> Bottleneck {
    match rng.gen_range(0u64..7) {
        0 => Bottleneck::zero(),
        1 => Bottleneck::one(),
        _ => Bottleneck::finite(signed(rng)),
    }
}

fn mincount(rng: &mut DetRng) -> MinCount {
    if rng.gen_range(0u64..6) == 0 {
        MinCount::zero()
    } else {
        MinCount::new(signed(rng), rng.gen_range(1u64..1000))
    }
}

/// Small powers of two stay exactly representable under the fixed-point
/// `⊗` (triple products need `2^{a+b+c} | 10^9`, i.e. exponents summing
/// to ≤ 9), keeping the associativity check exact. Distributivity holds
/// for *all* values because `max` commutes with the monotone `⊗`.
fn viterbi(rng: &mut DetRng) -> Viterbi {
    Viterbi::prob(ONE_SCALE >> rng.gen_range(0u32..4))
}

fn whyprov(rng: &mut DetRng) -> WhyProv {
    // Small sets of small witnesses keep ⊗ products tractable.
    let n = rng.gen_range(0usize..3);
    let witnesses: BTreeSet<BTreeSet<u32>> = (0..n)
        .map(|_| {
            let m = rng.gen_range(0usize..3);
            (0..m).map(|_| rng.gen_range(0u32..8)).collect()
        })
        .collect();
    WhyProv::from_witnesses(witnesses)
}

#[test]
fn count_laws() {
    let mut rng = DetRng::seed_from_u64(0xE001);
    for _ in 0..CASES {
        check_laws(
            &Count(rng.next_u64()),
            &Count(rng.next_u64()),
            &Count(rng.next_u64()),
        );
    }
}

#[test]
fn bool_laws() {
    let mut rng = DetRng::seed_from_u64(0xE002);
    for _ in 0..CASES {
        check_laws(
            &BoolRing(rng.gen_bool(0.5)),
            &BoolRing(rng.gen_bool(0.5)),
            &BoolRing(rng.gen_bool(0.5)),
        );
    }
}

#[test]
fn xor_laws() {
    let mut rng = DetRng::seed_from_u64(0xE003);
    for _ in 0..CASES {
        check_laws(
            &XorRing(rng.gen_bool(0.5)),
            &XorRing(rng.gen_bool(0.5)),
            &XorRing(rng.gen_bool(0.5)),
        );
    }
}

#[test]
fn tropical_laws() {
    let mut rng = DetRng::seed_from_u64(0xE004);
    for _ in 0..CASES {
        let (a, b, c) = (tropical(&mut rng), tropical(&mut rng), tropical(&mut rng));
        check_laws(&a, &b, &c);
    }
}

#[test]
fn maxplus_laws() {
    let mut rng = DetRng::seed_from_u64(0xE005);
    for _ in 0..CASES {
        let (a, b, c) = (maxplus(&mut rng), maxplus(&mut rng), maxplus(&mut rng));
        check_laws(&a, &b, &c);
    }
}

#[test]
fn bottleneck_laws() {
    let mut rng = DetRng::seed_from_u64(0xE006);
    for _ in 0..CASES {
        let (a, b, c) = (
            bottleneck(&mut rng),
            bottleneck(&mut rng),
            bottleneck(&mut rng),
        );
        check_laws(&a, &b, &c);
    }
}

#[test]
fn whyprov_laws() {
    let mut rng = DetRng::seed_from_u64(0xE007);
    for _ in 0..CASES {
        let (a, b, c) = (whyprov(&mut rng), whyprov(&mut rng), whyprov(&mut rng));
        check_laws(&a, &b, &c);
    }
}

#[test]
fn mincount_laws() {
    let mut rng = DetRng::seed_from_u64(0xE008);
    for _ in 0..CASES {
        let (a, b, c) = (mincount(&mut rng), mincount(&mut rng), mincount(&mut rng));
        check_laws(&a, &b, &c);
    }
}

#[test]
fn viterbi_laws() {
    let mut rng = DetRng::seed_from_u64(0xE009);
    for _ in 0..CASES {
        let (a, b, c) = (viterbi(&mut rng), viterbi(&mut rng), viterbi(&mut rng));
        check_laws(&a, &b, &c);
    }
}

#[test]
fn product_laws() {
    let mut rng = DetRng::seed_from_u64(0xE00A);
    for _ in 0..CASES {
        check_laws(
            &Prod(Count(rng.next_u64()), BoolRing(rng.gen_bool(0.5))),
            &Prod(Count(rng.next_u64()), BoolRing(rng.gen_bool(0.5))),
            &Prod(Count(rng.next_u64()), BoolRing(rng.gen_bool(0.5))),
        );
    }
}

#[test]
fn sum_matches_fold() {
    let mut rng = DetRng::seed_from_u64(0xE00B);
    for _ in 0..CASES {
        let xs: Vec<u64> = (0..rng.gen_range(0usize..20))
            .map(|_| rng.next_u64())
            .collect();
        let expected = xs.iter().fold(0u64, |acc, x| acc.wrapping_add(*x));
        assert_eq!(
            mpcjoin_semiring::sum(xs.into_iter().map(Count)),
            Count(expected)
        );
    }
}

#[test]
fn product_matches_fold() {
    let mut rng = DetRng::seed_from_u64(0xE00C);
    for _ in 0..CASES {
        let xs: Vec<u64> = (0..rng.gen_range(0usize..20))
            .map(|_| rng.next_u64())
            .collect();
        let expected = xs.iter().fold(1u64, |acc, x| acc.wrapping_mul(*x));
        assert_eq!(
            mpcjoin_semiring::product(xs.into_iter().map(Count)),
            Count(expected)
        );
    }
}

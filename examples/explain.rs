//! Explain: compile a query without running it.
//!
//! The query compiler prices every applicable physical strategy with the
//! Table-1 bounds, picks one, and lowers it to a logical operator DAG.
//! `QueryEngine::explain` exposes that artifact without simulating a
//! cluster run — this example prints the compilation of a star query as
//! the `mpcjoin-plan-v1` JSON document and as Graphviz DOT.
//!
//! Run with: `cargo run -p mpcjoin-examples --bin explain`

use mpcjoin::prelude::*;
use mpcjoin::query::parse_query;

fn main() {
    // Parse so attribute names survive into the explain output.
    let parsed =
        parse_query("Triples(x, y, z) :- A(x, hub), B(y, hub), C(z, hub).").expect("valid query");

    // A skewed star instance: one heavy hub shared by all three legs.
    let leg = |attr_pair: (Attr, Attr), n: u64| -> Relation<Count> {
        let (v, hub) = attr_pair;
        Relation::binary_ones(v, hub, (0..n).map(|i| (i, i % 7)))
    };
    // Ids follow first appearance in the text: x=0, hub=1, y=2, z=3.
    let (x, hub, y, z) = (Attr(0), Attr(1), Attr(2), Attr(3));
    let rels = vec![leg((x, hub), 600), leg((y, hub), 500), leg((z, hub), 400)];

    let p = 16;
    let engine = mpcjoin::QueryEngine::new(p);
    let ex = engine
        .explain(&parsed.query, &rels)
        .expect("instance matches the query");

    println!(
        "chosen plan: {:?} (of {} candidates)",
        ex.chosen,
        ex.candidates.len()
    );
    for c in &ex.candidates {
        let marker = if c.selected { "->" } else { "  " };
        println!(
            "  {marker} {:<18} bound {:>10.1}  {}",
            format!("{:?}", c.kind),
            c.bound,
            c.reason
        );
    }

    let doc = ex.to_json(Some(&parsed.names));
    println!("\n--- mpcjoin-plan-v1 JSON ---");
    println!("{}", doc.to_string_compact().expect("finite bounds"));

    println!("\n--- operator DAG (Graphviz DOT) ---");
    print!("{}", ex.to_dot(Some(&parsed.names)));

    // The same compilation drives execution: running the engine with the
    // default cost-based policy picks exactly this plan.
    let result = engine.run(&parsed.query, &rels).expect("runs");
    assert_eq!(result.plan, ex.chosen);
    println!(
        "\nexecuted: plan {:?}, load {}, {} output tuples",
        result.plan,
        result.cost.load,
        result.output.len()
    );
}

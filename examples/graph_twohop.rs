//! Two-hop reachability on a scale-free graph — the sparse boolean matrix
//! multiplication motivating the paper's introduction.
//!
//! A social-graph-style workload: "which pairs (follower, followee-of-
//! followee) are connected through at least one intermediary?" over the
//! boolean semiring, where hub accounts create exactly the degree skew
//! that the §3.1/§3.2 heavy-light machinery exists for. The example
//! sweeps the output size and shows the paper's algorithm pulling ahead
//! of the baseline as OUT grows.
//!
//! Run with: `cargo run -p mpcjoin-examples --bin graph_twohop --release`

use mpcjoin::prelude::*;
use mpcjoin::workload::{matrix, rng};

fn main() {
    let (a, b, c) = (Attr(0), Attr(1), Attr(2));
    let q = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, c]);
    let p = 16;

    println!("two-hop reachability, boolean semiring, p = {p}");
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>12} {:>8}",
        "N", "OUT", "plan-load", "base-load", "speedup", "rounds"
    );

    // Zipf-skewed follower graphs with increasing hub strength.
    for theta in [0.4, 0.8, 1.2] {
        let mut r = rng(42);
        let inst = matrix::zipf::<BoolRing>(&mut r, (a, b, c), 1500, 1500, 120, theta);
        let rels = [inst.r1, inst.r2];
        let new = mpcjoin::QueryEngine::new(p).run(&q, &rels).unwrap();
        let base = mpcjoin::QueryEngine::new(p)
            .plan(mpcjoin::PlanChoice::Baseline)
            .run(&q, &rels)
            .unwrap();
        assert!(new.output.semantically_eq(&base.output));
        println!(
            "{:>8} {:>8} {:>10} {:>12} {:>11.2}x {:>8}",
            3000,
            inst.out,
            new.cost.load,
            base.cost.load,
            base.cost.load as f64 / new.cost.load as f64,
            new.cost.rounds,
        );
    }

    // Dense-output block graphs: the worst-case-optimal regime.
    for side in [10u64, 20, 40] {
        let inst = matrix::blocks::<BoolRing>((a, b, c), 8, side, 2);
        let n = inst.r1.len();
        let rels = [inst.r1, inst.r2];
        let new = mpcjoin::QueryEngine::new(p).run(&q, &rels).unwrap();
        let base = mpcjoin::QueryEngine::new(p)
            .plan(mpcjoin::PlanChoice::Baseline)
            .run(&q, &rels)
            .unwrap();
        assert!(new.output.semantically_eq(&base.output));
        println!(
            "{:>8} {:>8} {:>10} {:>12} {:>11.2}x {:>8}",
            2 * n,
            inst.out,
            new.cost.load,
            base.cost.load,
            base.cost.load as f64 / new.cost.load as f64,
            new.cost.rounds,
        );
    }
}

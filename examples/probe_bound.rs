//! Attribute measured load to the theoretical bound, primitive by primitive.
//!
//! Runs the blocks matrix-multiplication workload at a few (p, block-side)
//! points, prints the `AuditVerdict` every `QueryEngine::run` attaches to its
//! result, and then uses the execution trace's per-label / per-phase report to
//! show *where* the constant factor over the bound is spent — the same
//! breakdown that pinned the §3.1 routing round (`wco:route`, up to 4L per
//! cell server) and the `Θ(p·log p)` sort-statistics floor documented in
//! EXPERIMENTS.md "Measured constant factors".

use mpcjoin::prelude::*;
use mpcjoin::workload::matrix;

fn main() {
    let (a, b, c) = (Attr(0), Attr(1), Attr(2));
    let q = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, c]);
    for (p, side, scale) in [(16usize, 2u64, 4u64), (16, 8, 4), (64, 8, 4)] {
        let k = (96 * p as u64 * scale / (4 * side)).max(1);
        let inst = matrix::blocks::<Count>((a, b, c), k, side, 2);
        let n = inst.r1.len() as u64;
        let rels = [inst.r1, inst.r2];
        let r = QueryEngine::new(p).trace(true).run(&q, &rels).unwrap();
        println!(
            "\n=== p={p} side={side} N={} OUT={} load={} ===",
            2 * n,
            inst.out,
            r.cost.load,
        );
        println!("{}", r.audit);
        let report = r.trace.unwrap().report();
        if let Some(crit) = report.critical {
            println!(
                "critical: server {} round {} received {} units during `{}`",
                crit.server, crit.round, crit.units, crit.label
            );
        }
        for bucket in &report.per_label {
            println!(
                "  label {:<50} load {:>7} total {:>9} rounds {}",
                bucket.label, bucket.load, bucket.total_units, bucket.rounds
            );
        }
        for bucket in &report.per_phase {
            println!(
                "  phase {:<50} load {:>7} total {:>9}",
                bucket.label, bucket.load, bucket.total_units
            );
        }
    }
}

//! Why-provenance over a star query: which input facts support each
//! output?
//!
//! A supply-chain audit: parts are described by three fact tables sharing
//! the part id — `Supplies(supplier, part)`, `Stocks(warehouse, part)`,
//! `Certifies(auditor, part)`. The star query
//! `∑_part Supplies ⋈ Stocks ⋈ Certifies` lists every
//! (supplier, warehouse, auditor) combination that co-occurs on some part;
//! annotating tuples in the why-provenance semiring makes each output
//! carry the exact set(s) of input facts that witness it — the
//! Green–Karvounarakis–Tannen construction the paper's annotated
//! relations come from.
//!
//! Run with: `cargo run -p mpcjoin-examples --bin provenance_supply_chain`

use mpcjoin::prelude::*;

fn table(attr: Attr, part_attr: Attr, base: u32, rows: &[(u64, u64)]) -> Relation<WhyProv> {
    Relation::from_entries(
        Schema::binary(attr, part_attr),
        rows.iter()
            .enumerate()
            .map(|(i, &(x, part))| (vec![x, part], WhyProv::tuple(base + i as u32)))
            .collect(),
    )
}

fn main() {
    let (supplier, warehouse, auditor, part) = (Attr(0), Attr(1), Attr(2), Attr(9));
    let q = TreeQuery::new(
        vec![
            Edge::binary(supplier, part),
            Edge::binary(warehouse, part),
            Edge::binary(auditor, part),
        ],
        [supplier, warehouse, auditor],
    );

    // Fact ids: Supplies = 100+, Stocks = 200+, Certifies = 300+.
    let supplies = table(
        supplier,
        part,
        100,
        &[(1, 7), (1, 8), (2, 7), (3, 9), (2, 8)],
    );
    let stocks = table(warehouse, part, 200, &[(10, 7), (11, 7), (10, 8), (12, 9)]);
    let certifies = table(auditor, part, 300, &[(20, 7), (21, 8), (20, 9), (21, 7)]);

    let result = mpcjoin::QueryEngine::new(8)
        .run(&q, &[supplies.clone(), stocks.clone(), certifies.clone()])
        .unwrap();
    let oracle = mpcjoin::execute_sequential(&q, &[supplies, stocks, certifies]);
    assert!(result.output.semantically_eq(&oracle));

    println!("supply-chain audit (why-provenance star query)");
    println!(
        "  plan = {:?}, load = {}, rounds = {}",
        result.plan, result.cost.load, result.cost.rounds
    );
    println!(
        "  {} (supplier, warehouse, auditor) combinations:",
        result.output.len()
    );
    for (row, prov) in result.output.canonical() {
        let witnesses: Vec<String> = prov
            .witnesses()
            .iter()
            .map(|w| {
                let facts: Vec<String> = w.iter().map(|id| format!("#{id}")).collect();
                format!("{{{}}}", facts.join(","))
            })
            .collect();
        println!(
            "    supplier {} / warehouse {} / auditor {}  ⇐  {}",
            row[0],
            row[1],
            row[2],
            witnesses.join(" or ")
        );
    }
}

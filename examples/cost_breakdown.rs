//! Where does the load go? Per-phase cost breakdown of a matrix
//! multiplication.
//!
//! The simulator's ledger can be partitioned into labeled phases; the
//! Theorem-1 dispatcher marks its stages (dangling removal, §2.2
//! estimation, the chosen algorithm), so one run shows exactly which step
//! dominates the load — the kind of introspection a systems paper's
//! "cost breakdown" figure would give.
//!
//! Run with: `cargo run -p mpcjoin-examples --bin cost_breakdown --release`

use mpcjoin::mpc::{Cluster, DistRelation};
use mpcjoin::prelude::*;
use mpcjoin::workload::matrix;

fn main() {
    let (a, b, c) = (Attr(0), Attr(1), Attr(2));
    let p = 16;

    for (label, side) in [("sparse output", 4u64), ("dense output", 64u64)] {
        let inst = matrix::blocks::<Count>((a, b, c), 1536 / (4 * side), side, 2);
        let mut cluster = Cluster::new(p);
        let d1 = DistRelation::scatter(&cluster, &inst.r1);
        let d2 = DistRelation::scatter(&cluster, &inst.r2);
        let (result, path) = mpcjoin::matmul::matmul(&mut cluster, &d1, &d2);

        println!(
            "\n{label}: N = {}, OUT = {}, chosen path = {path:?}, |output| = {}",
            inst.r1.len() + inst.r2.len(),
            inst.out,
            result.total_len(),
        );
        println!(
            "{:<36} {:>8} {:>8} {:>10}",
            "phase", "load", "rounds", "traffic"
        );
        for phase in cluster.phase_reports() {
            println!(
                "{:<36} {:>8} {:>8} {:>10}",
                phase.label, phase.cost.load, phase.cost.rounds, phase.cost.total_units
            );
        }
        let total = cluster.report();
        println!(
            "{:<36} {:>8} {:>8} {:>10}",
            "TOTAL", total.load, total.rounds, total.total_units
        );
    }
}

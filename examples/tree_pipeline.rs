//! The full §7 pipeline on the paper's Figure-2 tree, narrated: reduce →
//! twig decomposition → per-twig execution → free-connex combination —
//! with the query rendered as Graphviz DOT and the cost compared against
//! the baseline.
//!
//! Run with: `cargo run -p mpcjoin-examples --release --bin tree_pipeline`

use mpcjoin::prelude::*;
use mpcjoin::query::{classify, decompose_twigs, plan_reduction, skeleton, to_dot};
use mpcjoin::workload::{rng, trees};

fn main() {
    let q = trees::figure2_query();
    println!(
        "The Figure-2 tree query ({} relations, {} output attributes):",
        q.edges().len(),
        q.output().len()
    );
    println!("--- graphviz ---\n{}--- end ---\n", to_dot(&q, None));

    // Structural pipeline.
    let plan = plan_reduction(&q);
    println!(
        "reduce: {} fold step(s); {} relations remain",
        plan.steps.len(),
        plan.reduced.edges().len()
    );
    let twigs = decompose_twigs(&plan.reduced);
    println!("twig decomposition ({} twigs):", twigs.len());
    for (i, t) in twigs.iter().enumerate() {
        let shape = match classify(&t.query) {
            mpcjoin::query::Shape::FreeConnex => "free-connex",
            mpcjoin::query::Shape::MatMul { .. } => "matmul",
            mpcjoin::query::Shape::Line { .. } => "line",
            mpcjoin::query::Shape::Star { .. } => "star",
            mpcjoin::query::Shape::StarLike(_) => "star-like",
            mpcjoin::query::Shape::Twig => "general twig",
            mpcjoin::query::Shape::General => "general tree",
        };
        println!(
            "  twig {}: {:<12} {} relation(s), {} output attribute(s)",
            i + 1,
            shape,
            t.query.edges().len(),
            t.query.output().len()
        );
        if let Some(sk) = skeleton(&t.query) {
            println!(
                "          skeleton: V* = {:?}, contracted parts at {:?}",
                sk.vstar,
                sk.contracted.iter().map(|c| c.b).collect::<Vec<_>>()
            );
        }
    }

    // Data + execution.
    let inst = trees::random_instance::<Count>(&mut rng(2026), &q, 24, 6);
    let new = mpcjoin::QueryEngine::new(16).run(&q, &inst.rels).unwrap();
    let base = mpcjoin::QueryEngine::new(16)
        .plan(mpcjoin::PlanChoice::Baseline)
        .run(&q, &inst.rels)
        .unwrap();
    assert!(new.output.semantically_eq(&base.output));
    println!(
        "\nexecution on p = 16 (N = {}/relation, OUT = {}):",
        24, inst.out
    );
    println!(
        "  §7 pipeline: load {:>6}, rounds {:>5}",
        new.cost.load, new.cost.rounds
    );
    println!(
        "  baseline:    load {:>6}, rounds {:>5}",
        base.cost.load, base.cost.rounds
    );
}

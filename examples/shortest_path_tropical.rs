//! Shortest paths through a layered network via a tropical line query.
//!
//! A 4-hop logistics network (source → port → hub → port → destination)
//! annotated with leg costs in the min-plus semiring: the line query
//! `∑_{L1,L2,L3} R1 ⋈ R2 ⋈ R3 ⋈ R4` computes, for every
//! (source, destination) pair, the cheapest route — §4's chain matrix
//! multiplication with "+" as ⊗ and "min" as ⊕.
//!
//! Run with: `cargo run -p mpcjoin-examples --bin shortest_path_tropical`

use mpcjoin::prelude::*;

fn leg(from_attr: Attr, to_attr: Attr, from: u64, to: u64, seed: u64) -> Relation<TropicalMin> {
    // A sparse layered bipartite graph: each node connects to 3 of the
    // next layer, with deterministic pseudo-random costs 1..20.
    let mut entries = Vec::new();
    for u in 0..from {
        for k in 0..3u64 {
            let v = (u * 7 + k * 11 + seed) % to;
            let cost = 1 + (u * 13 + k * 5 + seed * 3) % 20;
            entries.push((vec![u, v], TropicalMin::finite(cost as i64)));
        }
    }
    Relation::from_entries(Schema::binary(from_attr, to_attr), entries).coalesce()
}

fn main() {
    let attrs: Vec<Attr> = (0..5).map(Attr).collect();
    let q = TreeQuery::new(
        (0..4)
            .map(|i| Edge::binary(attrs[i], attrs[i + 1]))
            .collect(),
        [attrs[0], attrs[4]],
    );

    let rels = vec![
        leg(attrs[0], attrs[1], 40, 12, 1),
        leg(attrs[1], attrs[2], 12, 6, 2),
        leg(attrs[2], attrs[3], 6, 12, 3),
        leg(attrs[3], attrs[4], 12, 40, 4),
    ];

    let p = 8;
    let result = mpcjoin::QueryEngine::new(p).run(&q, &rels).unwrap();
    let oracle = mpcjoin::execute_sequential(&q, &rels);
    assert!(result.output.semantically_eq(&oracle));

    println!("layered shortest paths (min-plus line query), p = {p}");
    println!(
        "  plan = {:?}, load = {}, rounds = {}",
        result.plan, result.cost.load, result.cost.rounds
    );
    println!(
        "  {} (source, destination) pairs are connected",
        result.output.len()
    );

    // Show the five cheapest routes.
    let mut routes: Vec<(i64, u64, u64)> = result
        .output
        .canonical()
        .into_iter()
        .filter_map(|(row, w)| w.value().map(|v| (v, row[0], row[1])))
        .collect();
    routes.sort_unstable();
    println!("  cheapest routes:");
    for (cost, s, d) in routes.into_iter().take(5) {
        println!("    {s:>3} → {d:<3}  total cost {cost}");
    }
}

//! Quickstart: sparse matrix multiplication as a join-aggregate query.
//!
//! Computes `∑_B R1(A,B) ⋈ R2(B,C)` over the counting semiring — i.e. the
//! number of length-2 paths between every `(a, c)` pair — on a simulated
//! 16-server MPC cluster, and prints the measured load next to the
//! distributed-Yannakakis baseline.
//!
//! Run with: `cargo run -p mpcjoin-examples --bin quickstart`

use mpcjoin::prelude::*;

fn main() {
    let (a, b, c) = (Attr(0), Attr(1), Attr(2));

    // The query: matrix multiplication, the simplest non-free-connex
    // join-aggregate query (paper §1.1).
    let q = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, c]);

    // A small sparse instance: a bipartite "fan" with one popular middle
    // vertex plus a sparse diagonal fringe.
    let mut r1_tuples = Vec::new();
    let mut r2_tuples = Vec::new();
    for i in 0..400u64 {
        r1_tuples.push((i, 0)); // every a reaches b = 0
        r2_tuples.push((0, i)); // b = 0 reaches every c
        r1_tuples.push((i, 1 + i)); // …plus a private b per a
        r2_tuples.push((1 + i, i));
    }
    let r1: Relation<Count> = Relation::binary_ones(a, b, r1_tuples);
    let r2: Relation<Count> = Relation::binary_ones(b, c, r2_tuples);

    let p = 16;
    let new = mpcjoin::QueryEngine::new(p)
        .run(&q, &[r1.clone(), r2.clone()])
        .unwrap();
    let baseline = mpcjoin::QueryEngine::new(p)
        .plan(mpcjoin::PlanChoice::Baseline)
        .run(&q, &[r1, r2])
        .unwrap();

    assert!(new.output.semantically_eq(&baseline.output));

    println!("sparse matrix multiplication on p = {p} servers");
    println!("  N1 = N2 = 800, OUT = {}", new.output.len());
    println!("  plan chosen:          {:?}", new.plan);
    println!(
        "  paper algorithm:      load = {:>6}   rounds = {:>2}   total traffic = {}",
        new.cost.load, new.cost.rounds, new.cost.total_units
    );
    println!(
        "  Yannakakis baseline:  load = {:>6}   rounds = {:>2}   total traffic = {}",
        baseline.cost.load, baseline.cost.rounds, baseline.cost.total_units
    );

    // A peek at the output: (0, 0) is connected through b = 0 and through
    // the private b = 1, so its path count is 2.
    let two_paths = new
        .output
        .canonical()
        .into_iter()
        .find(|(row, _)| row == &vec![0, 0])
        .expect("(0,0) is an output");
    println!(
        "  example output: (a=0, c=0) has {} two-hop paths",
        two_paths.1
    );
}

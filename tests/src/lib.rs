//! Integration-test host package; see the `tests/` subdirectory.

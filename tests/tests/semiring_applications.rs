//! End-to-end runs over the full semiring menagerie: each semiring's
//! *semantics* is checked, not just oracle equality — shortest paths are
//! actually shortest, witness sets are actually witnesses, counts count.

use mpcjoin::prelude::*;
use mpcjoin::{execute_sequential, PlanKind, QueryEngine};

const A: Attr = Attr(0);
const B: Attr = Attr(1);
const C: Attr = Attr(2);
const D: Attr = Attr(3);

fn line3() -> TreeQuery {
    TreeQuery::new(
        vec![Edge::binary(A, B), Edge::binary(B, C), Edge::binary(C, D)],
        [A, D],
    )
}

#[test]
fn mincount_counts_shortest_paths() {
    // Two cost-5 paths 0→9 and one cost-7 path.
    let q = line3();
    let w = |c: i64| MinCount::path(c);
    let rels = vec![
        Relation::from_entries(
            Schema::binary(A, B),
            vec![(vec![0, 1], w(1)), (vec![0, 2], w(2)), (vec![0, 3], w(3))],
        ),
        Relation::from_entries(
            Schema::binary(B, C),
            vec![(vec![1, 4], w(2)), (vec![2, 4], w(1)), (vec![3, 4], w(3))],
        ),
        Relation::from_entries(Schema::binary(C, D), vec![(vec![4, 9], w(2))]),
    ];
    let result = QueryEngine::new(4).run(&q, &rels).unwrap();
    assert!(result
        .output
        .semantically_eq(&execute_sequential(&q, &rels)));
    let (row, agg) = &result.output.canonical()[0];
    assert_eq!(row, &vec![0, 9]);
    // Paths: 1+2+2 = 5, 2+1+2 = 5, 3+3+2 = 8 → (5, two ways).
    assert_eq!(agg.get(), Some((5, 2)));
}

#[test]
fn viterbi_most_probable_route() {
    let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C]);
    let half = Viterbi::prob(mpcjoin::semiring::ONE_SCALE / 2);
    let tenth = Viterbi::prob(mpcjoin::semiring::ONE_SCALE / 10);
    let rels = vec![
        Relation::from_entries(
            Schema::binary(A, B),
            vec![(vec![0, 1], half), (vec![0, 2], tenth)],
        ),
        Relation::from_entries(
            Schema::binary(B, C),
            vec![(vec![1, 7], half), (vec![2, 7], Viterbi::one())],
        ),
    ];
    let result = QueryEngine::new(4).run(&q, &rels).unwrap();
    assert!(result
        .output
        .semantically_eq(&execute_sequential(&q, &rels)));
    let (_, best) = &result.output.canonical()[0];
    // max(0.5·0.5, 0.1·1.0) = 0.25.
    assert_eq!(best.value(), mpcjoin::semiring::ONE_SCALE / 4);
}

#[test]
fn product_semiring_computes_two_aggregates_at_once() {
    let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C]);
    let mk = |w: i64| Prod(Count(1), TropicalMin::finite(w));
    let rels = vec![
        Relation::from_entries(
            Schema::binary(A, B),
            vec![(vec![0, 1], mk(4)), (vec![0, 2], mk(1))],
        ),
        Relation::from_entries(
            Schema::binary(B, C),
            vec![(vec![1, 5], mk(1)), (vec![2, 5], mk(2))],
        ),
    ];
    let result = QueryEngine::new(4).run(&q, &rels).unwrap();
    let canonical = result.output.canonical();
    assert_eq!(canonical.len(), 1, "one output expected");
    let (row, Prod(count, dist)) = &canonical[0];
    assert_eq!(row, &vec![0, 5]);
    assert_eq!(*count, Count(2)); // two b-paths
    assert_eq!(*dist, TropicalMin::finite(3)); // min(4+1, 1+2)
}

#[test]
fn bottleneck_widest_path_line_query() {
    let q = line3();
    let cap = Bottleneck::finite;
    let rels = vec![
        Relation::from_entries(
            Schema::binary(A, B),
            vec![(vec![0, 1], cap(10)), (vec![0, 2], cap(3))],
        ),
        Relation::from_entries(
            Schema::binary(B, C),
            vec![(vec![1, 4], cap(2)), (vec![2, 4], cap(9))],
        ),
        Relation::from_entries(Schema::binary(C, D), vec![(vec![4, 9], cap(8))]),
    ];
    let result = QueryEngine::new(4).run(&q, &rels).unwrap();
    assert!(result
        .output
        .semantically_eq(&execute_sequential(&q, &rels)));
    let (_, widest) = &result.output.canonical()[0];
    // max(min(10,2,8), min(3,9,8)) = max(2, 3) = 3.
    assert_eq!(widest.value(), Some(3));
}

#[test]
fn whyprov_star_witnesses_are_sound_and_complete() {
    let q = TreeQuery::new(
        vec![Edge::binary(A, D), Edge::binary(B, D), Edge::binary(C, D)],
        [A, B, C],
    );
    let rels = vec![
        Relation::from_entries(
            Schema::binary(A, D),
            vec![
                (vec![1, 0], WhyProv::tuple(1)),
                (vec![1, 1], WhyProv::tuple(2)),
            ],
        ),
        Relation::from_entries(
            Schema::binary(B, D),
            vec![
                (vec![5, 0], WhyProv::tuple(10)),
                (vec![5, 1], WhyProv::tuple(11)),
            ],
        ),
        Relation::from_entries(
            Schema::binary(C, D),
            vec![
                (vec![8, 0], WhyProv::tuple(20)),
                (vec![8, 1], WhyProv::tuple(21)),
            ],
        ),
    ];
    // Pin the Star plan: this test is about the Star algorithm's
    // provenance handling, not plan selection (the cost-based default
    // may prefer Yannakakis on an instance this small).
    let result = QueryEngine::new(4)
        .plan(PlanChoice::Force(PlanKind::Star))
        .run(&q, &rels)
        .unwrap();
    assert_eq!(result.plan, PlanKind::Star);
    assert!(result
        .output
        .semantically_eq(&execute_sequential(&q, &rels)));
    let (row, prov) = &result.output.canonical()[0];
    assert_eq!(row, &vec![1, 5, 8]);
    // (1,5,8) holds via d=0 with facts {1,10,20} and via d=1 with
    // {2,11,21}: exactly two witnesses.
    assert_eq!(prov.len(), 2);
    assert!(prov
        .witnesses()
        .contains(&std::collections::BTreeSet::from([1, 10, 20])));
    assert!(prov
        .witnesses()
        .contains(&std::collections::BTreeSet::from([2, 11, 21])));
}

#[test]
fn maxplus_longest_path() {
    let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C]);
    let w = MaxPlus::finite;
    let rels = vec![
        Relation::from_entries(
            Schema::binary(A, B),
            vec![(vec![0, 1], w(3)), (vec![0, 2], w(7))],
        ),
        Relation::from_entries(
            Schema::binary(B, C),
            vec![(vec![1, 4], w(10)), (vec![2, 4], w(1))],
        ),
    ];
    let result = QueryEngine::new(4).run(&q, &rels).unwrap();
    let (_, longest) = &result.output.canonical()[0];
    // max(3+10, 7+1) = 13.
    assert_eq!(longest.value(), Some(13));
}

//! End-to-end serving-layer guarantees, driven through the scheduler and
//! executor exactly as `mpcjoin-serve` drives them (the TCP framing on
//! top is exercised by the CI `serve` job with the real binaries).
//!
//! Pinned here:
//! * ≥32 concurrent sessions with zero lost and zero duplicated
//!   responses (the ISSUE's admission-control acceptance bar);
//! * cache hits are byte-identical to cold runs AND the cold run itself
//!   matches the sequential oracle — so a hit is oracle-correct by
//!   transitivity;
//! * backpressure shows up as structured, retryable protocol errors;
//! * drain completes every admitted query before acknowledging.

use mpcjoin::mpc::json::Json;
use mpcjoin::prelude::*;
use mpcjoin_server::wire::{parse_frame, Frame, ResponseView};
use mpcjoin_server::{Executor, Obs, Scheduler, ServerConfig};
use std::collections::HashMap;
use std::sync::{mpsc, Arc};

fn query_request(id: u64, session: &str) -> mpcjoin_server::wire::QueryRequest {
    let line = format!(
        "{{\"type\":\"query\",\"id\":{id},\"session\":\"{session}\",\
         \"query\":\"Q(a, c) :- R(a, b), S(b, c)\",\"servers\":4,\
         \"relations\":{{\"R\":[[{id},10],[1,11],[2,10]],\"S\":[[10,7],[11,7]]}}}}"
    );
    match parse_frame(&line).expect("frame parses") {
        Frame::Query(req) => *req,
        other => panic!("expected query frame, got {other:?}"),
    }
}

#[test]
fn thirty_two_concurrent_sessions_lose_and_duplicate_nothing() {
    const SESSIONS: u64 = 32;
    const PER_SESSION: u64 = 4;
    let sched = Scheduler::new(ServerConfig {
        workers: 4,
        queue_cap: 1024,
        session_quota: 64,
        ..ServerConfig::default()
    });
    let (tx, rx) = mpsc::channel::<String>();
    std::thread::scope(|scope| {
        for s in 0..SESSIONS {
            let sched = &sched;
            let tx = tx.clone();
            scope.spawn(move || {
                for i in 0..PER_SESSION {
                    let id = s * 1000 + i;
                    let tx = tx.clone();
                    sched.submit(id + 1, query_request(id, &format!("s{s}")), move |frame| {
                        tx.send(frame).expect("collector alive");
                    });
                }
            });
        }
    });
    drop(tx);
    let mut seen: HashMap<u64, u32> = HashMap::new();
    for frame in rx.iter() {
        let view = ResponseView::parse(&frame).expect("parseable response");
        assert_eq!(view.kind, "result", "{:?} {:?}", view.code, view.detail);
        *seen.entry(view.id.expect("id echoed")).or_insert(0) += 1;
    }
    assert_eq!(
        seen.len() as u64,
        SESSIONS * PER_SESSION,
        "every query answered (none lost)"
    );
    assert!(
        seen.values().all(|&n| n == 1),
        "no duplicated responses: {seen:?}"
    );
    assert_eq!(sched.shutdown(), SESSIONS * PER_SESSION);
}

#[test]
fn cache_hits_are_oracle_correct_by_transitivity() {
    // Step 1: the cold body's rows must equal the sequential oracle's
    // canonical output. Step 2: the hit must be byte-identical to the
    // cold body. Together: a cache hit is oracle-checked.
    let ex = Executor::new(64, 1, 8, None, Arc::new(Obs::new()));
    let req = query_request(1, "t");
    let cold = ResponseView::parse(&ex.execute(&req)).unwrap();
    assert!(!cold.cached);

    let (a, b, c) = (Attr(0), Attr(1), Attr(2));
    let q = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, c]);
    let rels: Vec<Relation<Count>> = vec![
        Relation::binary_ones(a, b, [(1, 10), (1, 11), (2, 10)]),
        Relation::binary_ones(b, c, [(10, 7), (11, 7)]),
    ];
    let oracle = mpcjoin::execute_sequential(&q, &rels).canonical();

    let body = Json::parse(cold.result.as_deref().unwrap()).unwrap();
    let rows = body.get("rows").and_then(Json::as_arr).unwrap();
    assert_eq!(rows.len(), oracle.len());
    for ((row, annot), got) in oracle.iter().zip(rows) {
        let got_row: Vec<u64> = got.as_arr().unwrap()[0]
            .as_arr()
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap())
            .collect();
        assert_eq!(&got_row, row, "row values match the oracle");
        assert_eq!(
            got.as_arr().unwrap()[1].as_str().unwrap(),
            format!("{annot:?}"),
            "annotations match the oracle"
        );
    }

    let hit = ResponseView::parse(&ex.execute(&req)).unwrap();
    assert!(hit.cached);
    assert_eq!(hit.result, cold.result, "hit bytes == cold bytes");
}

#[test]
fn backpressure_is_always_a_structured_answer() {
    // Zero workers would deadlock; instead use 1 worker + tiny queue and
    // slow jobs so most of a synchronous burst is rejected.
    let sched = Scheduler::new(ServerConfig {
        workers: 1,
        queue_cap: 1,
        session_quota: 1000,
        cache_cap: 0,
        ..ServerConfig::default()
    });
    let (tx, rx) = mpsc::channel::<String>();
    for id in 0..12 {
        let mut req = query_request(id, "burst");
        req.delay_ms = 20;
        let tx = tx.clone();
        sched.submit(id + 1, req, move |f| tx.send(f).expect("collector alive"));
    }
    drop(tx);
    let mut results = 0u32;
    let mut rejections = 0u32;
    for frame in rx.iter() {
        let view = ResponseView::parse(&frame).unwrap();
        match view.kind.as_str() {
            "result" => results += 1,
            "error" => {
                assert_eq!(view.code.as_deref(), Some("overloaded"));
                assert!(
                    view.retry_after_ms.is_some(),
                    "rejections carry a retry hint"
                );
                assert!(view.id.is_some(), "rejections echo the request id");
                rejections += 1;
            }
            other => panic!("unexpected frame type `{other}`"),
        }
    }
    assert_eq!(results + rejections, 12, "every submission answered");
    assert!(rejections > 0, "the burst must overflow queue_cap=1");
    sched.shutdown();
}

#[test]
fn drain_answers_everything_before_acking() {
    let sched = Scheduler::new(ServerConfig {
        workers: 2,
        queue_cap: 64,
        ..ServerConfig::default()
    });
    let (tx, rx) = mpsc::channel::<String>();
    for id in 0..8 {
        let mut req = query_request(id, "d");
        req.delay_ms = 10;
        let tx = tx.clone();
        sched.submit(id + 1, req, move |f| tx.send(f).expect("collector alive"));
    }
    let completed = sched.drain();
    assert_eq!(completed, 8);
    drop(tx);
    // All 8 responses must already be in the channel — drain returns only
    // after delivery, which is what lets the server ack and exit safely.
    assert_eq!(rx.iter().count(), 8);
    sched.shutdown();
}

/// A query whose digest is shared by every session (id and session are
/// not part of the cache digest), so repeats hit the result cache.
fn shared_request(id: u64, session: &str) -> mpcjoin_server::wire::QueryRequest {
    let line = format!(
        "{{\"type\":\"query\",\"id\":{id},\"session\":\"{session}\",\
         \"query\":\"Q(a, c) :- R(a, b), S(b, c)\",\"servers\":4,\
         \"relations\":{{\"R\":[[3,10],[1,11],[2,10]],\"S\":[[10,7],[11,7]]}}}}"
    );
    match parse_frame(&line).expect("frame parses") {
        Frame::Query(req) => *req,
        other => panic!("expected query frame, got {other:?}"),
    }
}

fn num(doc: &Json, path: &[&str]) -> u64 {
    let mut cur = doc;
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("stats doc missing `{}`", path.join(".")));
    }
    cur.as_u64()
        .unwrap_or_else(|| panic!("`{}` is not an integer", path.join(".")))
}

/// The tentpole's exactness bar: under 32 concurrent sessions mixing
/// cache hits, faulted runs, executor errors, and admission rejections,
/// every submission is answered exactly once and the observability
/// plane's counters — scheduler stats, obs counters, cache gauges, and
/// the watchdog — all reconcile exactly with the frames the clients saw.
#[test]
fn counters_are_exact_under_concurrent_mixed_load() {
    const SESSIONS: u64 = 32;
    let sched = Scheduler::new(ServerConfig {
        workers: 4,
        queue_cap: 8,
        session_quota: 4,
        cache_cap: 64,
        ..ServerConfig::default()
    });
    let (tx, rx) = mpsc::channel::<String>();

    // Prime the cache deterministically: an empty queue must admit, so
    // this shared query runs cold exactly once before the storm.
    {
        let tx = tx.clone();
        sched.submit(1, shared_request(1, "prime"), move |f| {
            tx.send(f).expect("collector alive")
        });
    }
    let prime = ResponseView::parse(&rx.recv().expect("prime response")).unwrap();
    assert_eq!(prime.kind, "result", "{:?}", prime.detail);
    assert!(!prime.cached);

    // The storm: per session a shared query (hit), a unique query
    // (miss), a faulted twin (bypasses the cache, recovers), and a
    // malformed query (executor error). queue_cap=8 against 128 rapid
    // submissions guarantees some overload rejections.
    let mut fault_ids = std::collections::HashSet::new();
    let mut error_ids = std::collections::HashSet::new();
    for s in 0..SESSIONS {
        fault_ids.insert(1000 + s * 10 + 2);
        error_ids.insert(1000 + s * 10 + 3);
    }
    std::thread::scope(|scope| {
        for s in 0..SESSIONS {
            let sched = &sched;
            let tx = tx.clone();
            scope.spawn(move || {
                let session = format!("s{s}");
                for i in 0..4u64 {
                    let id = 1000 + s * 10 + i;
                    let mut req = match i {
                        0 => shared_request(id, &session),
                        1 => query_request(id, &session),
                        2 => {
                            let mut r = shared_request(id, &session);
                            r.fault_plan = Some(FaultPlan::new(11).retries(10).reorder(1));
                            r
                        }
                        _ => {
                            let mut r = shared_request(id, &session);
                            r.relations.pop(); // missing relation ⇒ bad_request
                            r
                        }
                    };
                    req.delay_ms = 5; // back the queue up so overload is certain
                    let tx = tx.clone();
                    sched.submit(id, req, move |f| tx.send(f).expect("collector alive"));
                }
            });
        }
    });
    let storm_frames: Vec<String> = (0..SESSIONS * 4)
        .map(|_| rx.recv().expect("storm response"))
        .collect();

    // Deterministic quota rejections: the storm has fully drained (every
    // response above was delivered after its counters moved), so four
    // slow jobs from a fresh session are admitted and two more bounce.
    for i in 0..6u64 {
        let mut req = shared_request(5000 + i, "burst");
        req.fault_plan = Some(FaultPlan::new(11).retries(10).reorder(1)); // dodge the cache
        req.delay_ms = 100;
        let tx = tx.clone();
        sched.submit(5000 + i, req, move |f| tx.send(f).expect("collector alive"));
    }
    let burst_frames: Vec<String> = (0..6).map(|_| rx.recv().expect("burst response")).collect();

    // Deterministic cache hit: the primed entry is still warm.
    {
        let tx = tx.clone();
        sched.submit(6000, shared_request(6000, "late"), move |f| {
            tx.send(f).expect("collector alive")
        });
    }
    let late = ResponseView::parse(&rx.recv().expect("late response")).unwrap();
    assert!(late.cached, "primed shared query must hit the cache");
    drop(tx);

    // Tally every frame exactly as a client would.
    let mut seen: HashMap<u64, u32> = HashMap::new();
    let mut results = 0u64;
    let mut cached = 0u64;
    let mut errors: HashMap<String, u64> = HashMap::new();
    let mut frames: Vec<String> = storm_frames;
    frames.extend(burst_frames);
    for frame in &frames {
        let view = ResponseView::parse(frame).expect("parseable response");
        let id = view.id.expect("id echoed");
        *seen.entry(id).or_insert(0) += 1;
        match view.kind.as_str() {
            "result" => {
                results += 1;
                if view.cached {
                    cached += 1;
                }
                if fault_ids.contains(&id) || id >= 5000 {
                    assert!(!view.cached, "faulted requests bypass the cache");
                    assert!(view.recovered, "faulted requests recover");
                }
                assert!(!error_ids.contains(&id), "malformed queries cannot succeed");
            }
            "error" => {
                let code = view.code.expect("errors carry a code");
                if code == "bad_request" {
                    assert!(error_ids.contains(&id), "only the malformed queries 400");
                } else {
                    assert!(
                        code == "overloaded" || code == "quota_exceeded",
                        "unexpected error code `{code}`"
                    );
                }
                *errors.entry(code).or_insert(0) += 1;
            }
            other => panic!("unexpected frame type `{other}`"),
        }
    }
    assert_eq!(
        frames.len() as u64,
        SESSIONS * 4 + 6,
        "every submission answered"
    );
    assert!(seen.values().all(|&n| n == 1), "no duplicated responses");

    let total_submitted = SESSIONS * 4 + 6 + 2; // storm + burst + prime + late
    let overloaded = errors.get("overloaded").copied().unwrap_or(0);
    let quota = errors.get("quota_exceeded").copied().unwrap_or(0);
    let bad = errors.get("bad_request").copied().unwrap_or(0);
    assert!(overloaded >= 1, "queue_cap=8 must overflow under the storm");
    assert_eq!(quota, 2, "burst jobs 5 and 6 exceed session_quota=4");

    sched.drain();
    let stats = sched.stats();
    assert_eq!(stats.rejected_overload, overloaded);
    assert_eq!(stats.rejected_quota, quota);
    assert_eq!(
        stats.admitted + stats.rejected_overload + stats.rejected_quota,
        total_submitted,
        "admission is a partition: admitted + rejected == submitted"
    );
    assert_eq!(
        stats.completed, stats.admitted,
        "every admitted job completed"
    );
    // `results`/`cached`/`bad` exclude the prime and late frames parsed
    // separately above: prime is a cold result, late a cached one.
    assert_eq!(stats.completed, results + bad + 2);

    // The obs plane's own ledger reconciles with the client-side view.
    let doc = sched.stats_doc();
    assert_eq!(num(&doc, &["sched", "completed"]), stats.completed);
    assert_eq!(num(&doc, &["counters", "error.overloaded"]), overloaded);
    assert_eq!(num(&doc, &["counters", "error.quota_exceeded"]), quota);
    assert_eq!(num(&doc, &["counters", "error.bad_request"]), bad);
    assert_eq!(num(&doc, &["counters", "semiring.count"]), stats.admitted);
    assert_eq!(num(&doc, &["cache", "hits"]), cached + 1); // + the late hit
    assert_eq!(
        num(&doc, &["watchdog", "audited"]),
        results - cached + 1, // cold successes, + the prime run
        "every cold success fed the watchdog exactly once"
    );
    assert_eq!(num(&doc, &["queue_depth"]), 0);
    assert_eq!(num(&doc, &["in_flight"]), 0);
    sched.shutdown();
}

/// The invisibility invariant, pinned: running with the structured log
/// and span plane enabled must leave every response byte — result rows,
/// cost ledger, audit verdict — identical to a plain executor, across
/// thread counts, for cold runs, cache hits, and recovered faulted runs.
#[test]
fn observability_plane_is_invisible_to_results_and_ledger() {
    let log_path = std::env::temp_dir().join(format!(
        "mpcjoin_obs_invisible_{}.jsonl",
        std::process::id()
    ));
    for threads in [1usize, 3] {
        let plain = Executor::new(64, threads, 8, None, Arc::new(Obs::new()));
        let observed = Executor::new(
            64,
            threads,
            8,
            None,
            Arc::new(Obs::with_log(&log_path).expect("log file opens")),
        );
        let mut faulted = query_request(7, "t");
        faulted.fault_plan = Some(FaultPlan::new(11).retries(10).reorder(1));
        let requests = [
            query_request(7, "t"),
            shared_request(8, "t"),
            faulted,
            query_request(7, "t"), // repeat ⇒ cache hit on both sides
        ];
        for (i, req) in requests.iter().enumerate() {
            let a = ResponseView::parse(&plain.execute(req)).unwrap();
            // Arbitrary rid and queue span: observation inputs must not
            // leak into the response.
            let b = ResponseView::parse(&observed.execute_observed(req, 40 + i as u64, 12_345))
                .unwrap();
            assert_eq!(a.kind, "result", "{:?}", a.detail);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.cached, b.cached, "request {i}: cache behaviour identical");
            assert_eq!(
                a.result, b.result,
                "request {i} (threads={threads}): body bytes differ with observability on"
            );
            assert_eq!(a.load, b.load, "frame-level ledger identical");
        }
    }
    // And the plane really was on: the log is a valid mpcjoin-log-v1
    // stream with one completion per request.
    let text = std::fs::read_to_string(&log_path).expect("log written");
    let summary = mpcjoin_server::obs::check_log(&text).expect("log validates");
    assert_eq!(summary.completes_query, 4);
    assert_eq!(summary.completes_cached, 1);
    std::fs::remove_file(&log_path).ok();
}

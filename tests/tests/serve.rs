//! End-to-end serving-layer guarantees, driven through the scheduler and
//! executor exactly as `mpcjoin-serve` drives them (the TCP framing on
//! top is exercised by the CI `serve` job with the real binaries).
//!
//! Pinned here:
//! * ≥32 concurrent sessions with zero lost and zero duplicated
//!   responses (the ISSUE's admission-control acceptance bar);
//! * cache hits are byte-identical to cold runs AND the cold run itself
//!   matches the sequential oracle — so a hit is oracle-correct by
//!   transitivity;
//! * backpressure shows up as structured, retryable protocol errors;
//! * drain completes every admitted query before acknowledging.

use mpcjoin::mpc::json::Json;
use mpcjoin::prelude::*;
use mpcjoin_server::wire::{parse_frame, Frame, ResponseView};
use mpcjoin_server::{Executor, Scheduler, ServerConfig};
use std::collections::HashMap;
use std::sync::mpsc;

fn query_request(id: u64, session: &str) -> mpcjoin_server::wire::QueryRequest {
    let line = format!(
        "{{\"type\":\"query\",\"id\":{id},\"session\":\"{session}\",\
         \"query\":\"Q(a, c) :- R(a, b), S(b, c)\",\"servers\":4,\
         \"relations\":{{\"R\":[[{id},10],[1,11],[2,10]],\"S\":[[10,7],[11,7]]}}}}"
    );
    match parse_frame(&line).expect("frame parses") {
        Frame::Query(req) => *req,
        other => panic!("expected query frame, got {other:?}"),
    }
}

#[test]
fn thirty_two_concurrent_sessions_lose_and_duplicate_nothing() {
    const SESSIONS: u64 = 32;
    const PER_SESSION: u64 = 4;
    let sched = Scheduler::new(ServerConfig {
        workers: 4,
        queue_cap: 1024,
        session_quota: 64,
        ..ServerConfig::default()
    });
    let (tx, rx) = mpsc::channel::<String>();
    std::thread::scope(|scope| {
        for s in 0..SESSIONS {
            let sched = &sched;
            let tx = tx.clone();
            scope.spawn(move || {
                for i in 0..PER_SESSION {
                    let id = s * 1000 + i;
                    let tx = tx.clone();
                    sched.submit(query_request(id, &format!("s{s}")), move |frame| {
                        tx.send(frame).expect("collector alive");
                    });
                }
            });
        }
    });
    drop(tx);
    let mut seen: HashMap<u64, u32> = HashMap::new();
    for frame in rx.iter() {
        let view = ResponseView::parse(&frame).expect("parseable response");
        assert_eq!(view.kind, "result", "{:?} {:?}", view.code, view.detail);
        *seen.entry(view.id.expect("id echoed")).or_insert(0) += 1;
    }
    assert_eq!(
        seen.len() as u64,
        SESSIONS * PER_SESSION,
        "every query answered (none lost)"
    );
    assert!(
        seen.values().all(|&n| n == 1),
        "no duplicated responses: {seen:?}"
    );
    assert_eq!(sched.shutdown(), SESSIONS * PER_SESSION);
}

#[test]
fn cache_hits_are_oracle_correct_by_transitivity() {
    // Step 1: the cold body's rows must equal the sequential oracle's
    // canonical output. Step 2: the hit must be byte-identical to the
    // cold body. Together: a cache hit is oracle-checked.
    let ex = Executor::new(64, 1, 8, None);
    let req = query_request(1, "t");
    let cold = ResponseView::parse(&ex.execute(&req)).unwrap();
    assert!(!cold.cached);

    let (a, b, c) = (Attr(0), Attr(1), Attr(2));
    let q = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, c]);
    let rels: Vec<Relation<Count>> = vec![
        Relation::binary_ones(a, b, [(1, 10), (1, 11), (2, 10)]),
        Relation::binary_ones(b, c, [(10, 7), (11, 7)]),
    ];
    let oracle = mpcjoin::execute_sequential(&q, &rels).canonical();

    let body = Json::parse(cold.result.as_deref().unwrap()).unwrap();
    let rows = body.get("rows").and_then(Json::as_arr).unwrap();
    assert_eq!(rows.len(), oracle.len());
    for ((row, annot), got) in oracle.iter().zip(rows) {
        let got_row: Vec<u64> = got.as_arr().unwrap()[0]
            .as_arr()
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap())
            .collect();
        assert_eq!(&got_row, row, "row values match the oracle");
        assert_eq!(
            got.as_arr().unwrap()[1].as_str().unwrap(),
            format!("{annot:?}"),
            "annotations match the oracle"
        );
    }

    let hit = ResponseView::parse(&ex.execute(&req)).unwrap();
    assert!(hit.cached);
    assert_eq!(hit.result, cold.result, "hit bytes == cold bytes");
}

#[test]
fn backpressure_is_always_a_structured_answer() {
    // Zero workers would deadlock; instead use 1 worker + tiny queue and
    // slow jobs so most of a synchronous burst is rejected.
    let sched = Scheduler::new(ServerConfig {
        workers: 1,
        queue_cap: 1,
        session_quota: 1000,
        cache_cap: 0,
        ..ServerConfig::default()
    });
    let (tx, rx) = mpsc::channel::<String>();
    for id in 0..12 {
        let mut req = query_request(id, "burst");
        req.delay_ms = 20;
        let tx = tx.clone();
        sched.submit(req, move |f| tx.send(f).expect("collector alive"));
    }
    drop(tx);
    let mut results = 0u32;
    let mut rejections = 0u32;
    for frame in rx.iter() {
        let view = ResponseView::parse(&frame).unwrap();
        match view.kind.as_str() {
            "result" => results += 1,
            "error" => {
                assert_eq!(view.code.as_deref(), Some("overloaded"));
                assert!(
                    view.retry_after_ms.is_some(),
                    "rejections carry a retry hint"
                );
                assert!(view.id.is_some(), "rejections echo the request id");
                rejections += 1;
            }
            other => panic!("unexpected frame type `{other}`"),
        }
    }
    assert_eq!(results + rejections, 12, "every submission answered");
    assert!(rejections > 0, "the burst must overflow queue_cap=1");
    sched.shutdown();
}

#[test]
fn drain_answers_everything_before_acking() {
    let sched = Scheduler::new(ServerConfig {
        workers: 2,
        queue_cap: 64,
        ..ServerConfig::default()
    });
    let (tx, rx) = mpsc::channel::<String>();
    for id in 0..8 {
        let mut req = query_request(id, "d");
        req.delay_ms = 10;
        let tx = tx.clone();
        sched.submit(req, move |f| tx.send(f).expect("collector alive"));
    }
    let completed = sched.drain();
    assert_eq!(completed, 8);
    drop(tx);
    // All 8 responses must already be in the channel — drain returns only
    // after delivery, which is what lets the server ack and exit safely.
    assert_eq!(rx.iter().count(), 8);
    sched.shutdown();
}

//! End-to-end oracle tests: for every query shape, the planner-selected
//! distributed algorithm must produce exactly the sequential Yannakakis
//! result — as annotated relations, across semirings with different
//! failure modes (counting detects double-adds, GF(2) detects duplicated
//! elementary products, tropical detects lost alternatives).

use mpcjoin::prelude::*;
use mpcjoin::workload::{chain, matrix, rng, star, trees};
use mpcjoin::{execute_sequential, PlanKind, QueryEngine};

fn assert_oracle<S: Semiring>(
    q: &TreeQuery,
    rels: &[Relation<S>],
    p: usize,
    expect_plan: Option<PlanKind>,
) {
    let result = QueryEngine::new(p).run(q, rels).unwrap();
    if let Some(plan) = expect_plan {
        assert_eq!(result.plan, plan);
    }
    let oracle = execute_sequential(q, rels);
    assert!(
        result.output.semantically_eq(&oracle),
        "plan {:?} diverged from the sequential oracle",
        result.plan
    );
}

#[test]
fn matmul_uniform_instances_three_semirings() {
    let (a, b, c) = (Attr(0), Attr(1), Attr(2));
    let q = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, c]);
    for seed in 0..3 {
        let inst = matrix::uniform::<Count>(&mut rng(seed), (a, b, c), 300, 300, (80, 30, 80));
        assert_oracle(
            &q,
            &[inst.r1.clone(), inst.r2.clone()],
            16,
            Some(PlanKind::MatMul),
        );

        // Re-annotate the same instance in GF(2) and tropical.
        let x1 = Relation::<XorRing>::from_entries(
            inst.r1.schema().clone(),
            inst.r1
                .entries()
                .iter()
                .map(|(r, _)| (r.clone(), XorRing(true)))
                .collect(),
        );
        let x2 = Relation::<XorRing>::from_entries(
            inst.r2.schema().clone(),
            inst.r2
                .entries()
                .iter()
                .map(|(r, _)| (r.clone(), XorRing(true)))
                .collect(),
        );
        assert_oracle(&q, &[x1, x2], 16, None);

        let t = |rel: &Relation<Count>| {
            Relation::<TropicalMin>::from_entries(
                rel.schema().clone(),
                rel.entries()
                    .iter()
                    .enumerate()
                    .map(|(i, (r, _))| (r.clone(), TropicalMin::finite((i % 17) as i64)))
                    .collect(),
            )
        };
        assert_oracle(&q, &[t(&inst.r1), t(&inst.r2)], 16, None);
    }
}

#[test]
fn matmul_zipf_skew() {
    let (a, b, c) = (Attr(0), Attr(1), Attr(2));
    let q = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, c]);
    for theta in [0.5, 1.0, 1.5] {
        let inst = matrix::zipf::<Count>(&mut rng(99), (a, b, c), 400, 400, 60, theta);
        assert_oracle(&q, &[inst.r1, inst.r2], 8, Some(PlanKind::MatMul));
    }
}

#[test]
fn matmul_block_dense_output() {
    let (a, b, c) = (Attr(0), Attr(1), Attr(2));
    let q = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, c]);
    let inst = matrix::blocks::<Count>((a, b, c), 6, 16, 2);
    assert_oracle(&q, &[inst.r1, inst.r2], 16, Some(PlanKind::MatMul));
}

#[test]
fn line_queries_of_increasing_length() {
    for hops in [3usize, 4, 5] {
        let inst = chain::uniform::<Count>(&mut rng(hops as u64), hops, 80, 14);
        assert_oracle(&inst.query, &inst.rels, 8, Some(PlanKind::Line));
    }
}

#[test]
fn line_query_layered_fanout() {
    for fanout in [1u64, 3, 6] {
        let inst = chain::layered::<Count>(4, 16, fanout);
        assert_oracle(&inst.query, &inst.rels, 8, Some(PlanKind::Line));
    }
}

#[test]
fn star_queries_three_to_five_arms() {
    for arms in [3usize, 4, 5] {
        let inst = star::uniform::<Count>(&mut rng(7 + arms as u64), arms, 30, 25, 5);
        assert_oracle(&inst.query, &inst.rels, 8, Some(PlanKind::Star));
    }
}

#[test]
fn star_query_forced_permutation_classes() {
    // Degree profiles forcing several distinct permutation classes.
    let inst =
        star::degree_profile::<Count>(3, 6, &[vec![1, 5, 2], vec![4, 1, 1, 3], vec![2, 2, 6]]);
    assert_oracle(&inst.query, &inst.rels, 8, Some(PlanKind::Star));
}

#[test]
fn figure3_general_twig_random() {
    let q = trees::figure3_query();
    for seed in 0..2 {
        let inst = trees::random_instance::<Count>(&mut rng(seed), &q, 25, 5);
        assert_oracle(&inst.query, &inst.rels, 8, Some(PlanKind::Tree));
    }
}

#[test]
fn figure2_full_tree_random() {
    let q = trees::figure2_query();
    let inst = trees::random_instance::<Count>(&mut rng(4), &q, 18, 5);
    assert_oracle(&inst.query, &inst.rels, 8, Some(PlanKind::Tree));
}

#[test]
fn figure2_full_tree_xor() {
    let q = trees::figure2_query();
    let inst = trees::random_instance::<Count>(&mut rng(5), &q, 15, 4);
    let rels: Vec<Relation<XorRing>> = inst
        .rels
        .iter()
        .map(|r| {
            Relation::from_entries(
                r.schema().clone(),
                r.entries()
                    .iter()
                    .map(|(row, _)| (row.clone(), XorRing(true)))
                    .collect(),
            )
        })
        .collect();
    assert_oracle(&q, &rels, 8, Some(PlanKind::Tree));
}

#[test]
fn free_connex_queries_take_yannakakis() {
    let (a, b, c) = (Attr(0), Attr(1), Attr(2));
    // Full join: y = V.
    let q = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, b, c]);
    let rels = vec![
        Relation::<Count>::binary_ones(a, b, (0..60u64).map(|i| (i % 12, i % 7))),
        Relation::<Count>::binary_ones(b, c, (0..60u64).map(|i| (i % 7, i % 9))),
    ];
    assert_oracle(&q, &rels, 8, Some(PlanKind::FreeConnexYannakakis));
}

#[test]
fn full_aggregation_count_join_size() {
    let (a, b, c) = (Attr(0), Attr(1), Attr(2));
    let q = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], []);
    let rels = vec![
        Relation::<Count>::binary_ones(a, b, (0..50u64).map(|i| (i % 10, i % 6))),
        Relation::<Count>::binary_ones(b, c, (0..50u64).map(|i| (i % 6, i % 8))),
    ];
    let result = QueryEngine::new(8).run(&q, &rels).unwrap();
    let oracle = execute_sequential(&q, &rels);
    assert!(result.output.semantically_eq(&oracle));
}

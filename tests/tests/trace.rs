//! End-to-end checks of the round-level execution trace layer: JSON
//! round-trips, sum-consistency of the per-primitive breakdowns against
//! the cost ledger, and backend-independence of the recorded events.

use mpcjoin::mpc::json::Json;
use mpcjoin::prelude::*;
use mpcjoin::workload::chain;

fn funnel_instance() -> (TreeQuery, Vec<Relation<Count>>) {
    // The Table-1 line-query family (3-hop funnel): enough structure to
    // exercise dangling removal, §2.2 estimation, and fragment combining.
    let inst = chain::funnel::<Count>(8, 4, 4);
    (inst.query, inst.rels)
}

fn traced_run(engine: QueryEngine, q: &TreeQuery, rels: &[Relation<Count>]) -> (Trace, CostReport) {
    let result = engine.trace(true).run(q, rels).expect("valid instance");
    let trace = result.trace.expect("tracing was enabled");
    (trace, result.cost)
}

#[test]
fn trace_json_roundtrips_and_matches_cost_report() {
    let (q, rels) = funnel_instance();
    let (trace, cost) = traced_run(QueryEngine::new(8), &q, &rels);

    let doc = Json::parse(&trace.to_json()).expect("exporter emits valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("mpcjoin-trace-v3")
    );
    assert_eq!(
        doc.get("audit"),
        Some(&Json::Null),
        "standalone export carries an empty audit slot"
    );
    assert_eq!(
        doc.get("recovery_report"),
        Some(&Json::Null),
        "no fault plane, no recovery report"
    );
    assert_eq!(
        doc.get("recovery")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(0),
        "no fault plane, no recovery events"
    );
    assert_eq!(doc.get("servers").and_then(Json::as_u64), Some(8));
    assert_eq!(doc.get("load").and_then(Json::as_u64), Some(cost.load));
    assert_eq!(doc.get("rounds").and_then(Json::as_u64), Some(cost.rounds));
    assert_eq!(
        doc.get("total_units").and_then(Json::as_u64),
        Some(cost.total_units)
    );

    // Events round-trip: as many as the in-memory trace, and the traffic
    // matrices re-sum to the per-server received vectors.
    let events = doc.get("events").and_then(Json::as_arr).unwrap();
    assert_eq!(events.len(), trace.events.len());
    assert!(!events.is_empty(), "a real run records exchanges");
    let mut unit_sum = 0;
    for e in events {
        let received: Vec<u64> = e
            .get("received")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap())
            .collect();
        assert_eq!(received.len(), 8);
        let traffic = e.get("traffic").and_then(Json::as_arr).unwrap();
        assert_eq!(traffic.len(), 8);
        for (dst, &got) in received.iter().enumerate() {
            let col_sum: u64 = traffic
                .iter()
                .map(|row| row.as_arr().unwrap()[dst].as_u64().unwrap())
                .sum();
            assert_eq!(col_sum, got, "traffic column {dst} must re-sum to received");
        }
        unit_sum += received.iter().sum::<u64>();
    }
    assert_eq!(unit_sum, cost.total_units, "events account for all traffic");
}

#[test]
fn trace_json_embeds_the_audit_verdict() {
    let (q, rels) = funnel_instance();
    let result = QueryEngine::new(8).trace(true).run(&q, &rels).unwrap();
    let trace = result.trace.as_ref().unwrap();
    let doc =
        Json::parse(&trace.to_json_with(Some(&result.audit.to_json()), result.recovery.as_ref()))
            .unwrap();
    let audit = doc.get("audit").expect("audit member present");
    assert_ne!(audit, &Json::Null);
    assert_eq!(
        audit.get("measured").and_then(Json::as_u64),
        Some(result.cost.load),
        "the embedded verdict audits this very run"
    );
    assert_eq!(
        audit.get("within").cloned(),
        Some(Json::Bool(result.audit.within))
    );
}

#[test]
fn breakdowns_are_sum_consistent_with_the_ledger() {
    let (q, rels) = funnel_instance();
    let (trace, cost) = traced_run(QueryEngine::new(8), &q, &rels);
    let report = trace.report();

    let label_units: u64 = report.per_label.iter().map(|b| b.total_units).sum();
    let phase_units: u64 = report.per_phase.iter().map(|b| b.total_units).sum();
    assert_eq!(label_units, cost.total_units);
    assert_eq!(phase_units, cost.total_units);
    assert!(report.per_label.iter().all(|b| b.load <= cost.load));
    assert!(report.per_phase.iter().all(|b| b.load <= cost.load));

    assert_eq!(report.per_server.len(), 8);
    assert_eq!(report.per_server.iter().sum::<u64>(), cost.total_units);

    let critical = report.critical.expect("non-empty run has a critical cell");
    assert_eq!(critical.units, cost.load, "critical cell defines the load");
    assert_eq!(trace.critical_round().unwrap().units, cost.load);

    // The algorithm labeled its phases: the line query marks at least
    // dangling removal and OUT estimation.
    let phase_labels: Vec<&str> = report.per_phase.iter().map(|b| b.label.as_str()).collect();
    assert!(
        phase_labels.iter().any(|l| l.contains("dangling")),
        "expected a dangling-removal phase, got {phase_labels:?}"
    );
}

#[test]
fn traces_are_identical_across_backends() {
    let (q, rels) = funnel_instance();
    let (serial, serial_cost) = traced_run(QueryEngine::new(8), &q, &rels);
    for threads in [1usize, 2, 4] {
        let (threaded, cost) = traced_run(QueryEngine::new(8).threads(threads), &q, &rels);
        // TraceEvent/ComputeSpan equality deliberately ignores wall-clock
        // fields, so whole-trace comparison is exact and deterministic.
        assert_eq!(cost, serial_cost, "{threads} threads");
        assert_eq!(threaded.events, serial.events, "{threads} threads");
        assert_eq!(threaded.compute, serial.compute, "{threads} threads");
        assert_eq!(threaded.phases, serial.phases, "{threads} threads");
    }
}

#[test]
fn tracing_is_invisible_in_the_cost_report() {
    let (q, rels) = funnel_instance();
    let plain = QueryEngine::new(8).run(&q, &rels).unwrap();
    assert!(plain.trace.is_none(), "tracing is off by default");
    let traced = QueryEngine::new(8).trace(true).run(&q, &rels).unwrap();
    assert_eq!(
        plain.cost, traced.cost,
        "tracing must not perturb the ledger"
    );
    assert!(plain.output.semantically_eq(&traced.output));
}

#[test]
fn star_query_trace_labels_its_primitives() {
    let (a, b, c, d) = (Attr(0), Attr(1), Attr(2), Attr(3));
    let q = TreeQuery::new(
        vec![Edge::binary(a, d), Edge::binary(b, d), Edge::binary(c, d)],
        [a, b, c],
    );
    let rels = vec![
        Relation::<Count>::binary_ones(a, d, (0..24u64).map(|i| (i % 6, i % 3))),
        Relation::<Count>::binary_ones(b, d, (0..24u64).map(|i| (i % 5, i % 3))),
        Relation::<Count>::binary_ones(c, d, (0..24u64).map(|i| (i % 4, i % 3))),
    ];
    let result = QueryEngine::new(4).trace(true).run(&q, &rels).unwrap();
    assert_eq!(result.plan, PlanKind::Star);
    let trace = result.trace.unwrap();
    let report = trace.report();
    let labels: Vec<&str> = report.per_label.iter().map(|b| b.label.as_str()).collect();
    assert!(
        labels.iter().any(|l| l.contains("semijoin")),
        "dangling removal runs semijoins, got {labels:?}"
    );
    assert!(
        report
            .per_phase
            .iter()
            .any(|b| b.label.starts_with("star:")),
        "star algorithm marks its phases"
    );
}

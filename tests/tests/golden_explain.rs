//! Golden snapshots of the compiler's explain artifact.
//!
//! Each case compiles a fixed query on fixed statistics and compares the
//! `mpcjoin-plan-v1` JSON byte-for-byte against the committed snapshot
//! under `results/explain/`. Any intentional change to plan selection,
//! bound formulas, or the IR must regenerate the snapshots (run with
//! `MPCJOIN_BLESS=1`) and show up in review as a readable diff.

use mpcjoin::compiler::{explain, Stats};
use mpcjoin::prelude::*;
use mpcjoin::workload::trees;
use std::path::PathBuf;

fn snapshot_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("results")
        .join("explain")
}

fn check(name: &str, q: &TreeQuery, sizes: Vec<u64>, out: u64, p: u64) {
    let ex = explain(q, Stats { sizes, out }, p);
    let fresh = ex
        .to_json(None)
        .to_string_compact()
        .expect("explain JSON has finite numbers");
    let path = snapshot_dir().join(format!("{name}.json"));
    if std::env::var_os("MPCJOIN_BLESS").is_some() {
        std::fs::create_dir_all(snapshot_dir()).expect("create snapshot dir");
        std::fs::write(&path, &fresh).expect("write snapshot");
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); run with MPCJOIN_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        fresh, committed,
        "{name}: explain artifact drifted from the committed snapshot; \
         regenerate with MPCJOIN_BLESS=1 if intentional"
    );
}

#[test]
fn golden_matmul_sparse_output() {
    let (a, b, c) = (Attr(0), Attr(1), Attr(2));
    let q = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, c]);
    check("matmul_sparse", &q, vec![6144, 6144], 3072, 16);
}

#[test]
fn golden_line3_funnel() {
    let attrs: Vec<Attr> = (0..4).map(Attr).collect();
    let q = TreeQuery::new(
        vec![
            Edge::binary(attrs[0], attrs[1]),
            Edge::binary(attrs[1], attrs[2]),
            Edge::binary(attrs[2], attrs[3]),
        ],
        [attrs[0], attrs[3]],
    );
    check("line3", &q, vec![2048, 2048, 2048], 128, 16);
}

#[test]
fn golden_star3() {
    let hub = Attr(3);
    let q = TreeQuery::new(
        vec![
            Edge::binary(Attr(0), hub),
            Edge::binary(Attr(1), hub),
            Edge::binary(Attr(2), hub),
        ],
        [Attr(0), Attr(1), Attr(2)],
    );
    check("star3", &q, vec![4096, 4096, 4096], 512, 16);
}

#[test]
fn golden_figure3_twig() {
    let q = trees::figure3_query();
    let sizes = vec![1024; q.edges().len()];
    check("figure3_twig", &q, sizes, 2048, 16);
}

#[test]
fn golden_skewed_star_prefers_an_alternative() {
    // One giant arm: the cost model should punt the structural Star pick
    // only if the margin is beaten — the snapshot pins whichever way the
    // hysteresis falls so selection changes are always visible in review.
    let hub = Attr(3);
    let q = TreeQuery::new(
        vec![
            Edge::binary(Attr(0), hub),
            Edge::binary(Attr(1), hub),
            Edge::binary(Attr(2), hub),
        ],
        [Attr(0), Attr(1), Attr(2)],
    );
    check("star3_skewed", &q, vec![1_000_000, 64, 64], 4096, 16);
}

//! MPC-model guarantees: constant rounds, load-bound sanity, and the
//! paper's predicted baseline-vs-new ordering.

use mpcjoin::matmul::theory;
use mpcjoin::prelude::*;
use mpcjoin::workload::{chain, matrix, rng, star, trees};
use mpcjoin::{PlanChoice, QueryEngine};

/// Rounds must not grow with the input size at a fixed query shape
/// (constant-round requirement, §1.3).
#[test]
fn rounds_constant_matmul() {
    let (a, b, c) = (Attr(0), Attr(1), Attr(2));
    let q = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, c]);
    let mut rounds = Vec::new();
    for scale in [1u64, 4, 16] {
        let inst = matrix::blocks::<Count>((a, b, c), 4 * scale, 8, 2);
        let r = QueryEngine::new(8).run(&q, &[inst.r1, inst.r2]).unwrap();
        rounds.push(r.cost.rounds);
    }
    assert!(
        rounds.windows(2).all(|w| w[0] == w[1]),
        "matmul rounds grew with N: {rounds:?}"
    );
}

#[test]
fn rounds_constant_line() {
    let mut rounds = Vec::new();
    for dom in [16u64, 64, 256] {
        let inst = chain::layered::<Count>(3, dom, 2);
        let r = QueryEngine::new(8).run(&inst.query, &inst.rels).unwrap();
        rounds.push(r.cost.rounds);
    }
    assert!(
        rounds.windows(2).all(|w| w[0] == w[1]),
        "line rounds grew with N: {rounds:?}"
    );
}

#[test]
fn rounds_constant_star() {
    let mut rounds = Vec::new();
    for scale in [2u64, 8, 32] {
        // Same degree profile (hence the same permutation classes) at
        // growing scale.
        let inst = star::degree_profile::<Count>(3, scale, &[vec![2], vec![3], vec![4]]);
        let r = QueryEngine::new(8).run(&inst.query, &inst.rels).unwrap();
        rounds.push(r.cost.rounds);
    }
    assert!(
        rounds.windows(2).all(|w| w[0] == w[1]),
        "star rounds grew with N: {rounds:?}"
    );
}

#[test]
fn rounds_constant_tree() {
    let q = trees::figure3_query();
    let mut rounds = Vec::new();
    for dom in [4u64, 8, 16] {
        let inst = trees::layered_instance::<Count>(&q, dom, 2);
        let r = QueryEngine::new(8).run(&inst.query, &inst.rels).unwrap();
        rounds.push(r.cost.rounds);
    }
    assert!(
        rounds.windows(2).all(|w| w[0] == w[1]),
        "tree rounds grew with N: {rounds:?}"
    );
}

/// The measured matmul load must stay within a constant factor of the
/// Theorem 1 bound across the OUT sweep.
#[test]
fn matmul_load_tracks_theorem1_bound() {
    let (a, b, c) = (Attr(0), Attr(1), Attr(2));
    let q = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, c]);
    let p = 16u64;
    for side in [4u64, 16, 64] {
        let inst = matrix::blocks::<Count>((a, b, c), 8, side, 2);
        let n = inst.r1.len() as u64;
        let r = QueryEngine::new(p as usize)
            .run(&q, &[inst.r1, inst.r2])
            .unwrap();
        let bound = theory::new_mm_bound(n, n, inst.out, p);
        assert!(
            (r.cost.load as f64) <= 20.0 * bound + 400.0,
            "side={side}: load {} vs bound {bound:.0}",
            r.cost.load
        );
    }
}

/// Headline result: for OUT = ω(1) the paper's algorithm beats the
/// distributed Yannakakis baseline on matrix multiplication.
#[test]
fn matmul_beats_baseline_for_large_out() {
    let (a, b, c) = (Attr(0), Attr(1), Attr(2));
    let q = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, c]);
    // Dense blocks: OUT = 8·48² ≈ 18k from N ≈ 1.5k.
    let inst = matrix::blocks::<Count>((a, b, c), 8, 48, 2);
    let rels = [inst.r1, inst.r2];
    let new = QueryEngine::new(16).run(&q, &rels).unwrap();
    let base = QueryEngine::new(16)
        .plan(PlanChoice::Baseline)
        .run(&q, &rels)
        .unwrap();
    assert!(new.output.semantically_eq(&base.output));
    assert!(
        new.cost.load < base.cost.load,
        "paper algorithm (load {}) should beat the baseline (load {}) at OUT = {}",
        new.cost.load,
        base.cost.load,
        inst.out
    );
}

/// The KMV estimator is within a constant factor on line queries.
#[test]
fn kmv_estimates_within_constant_factor() {
    use mpcjoin::mpc::{Cluster, DistRelation};
    use mpcjoin::sketch::estimate_out_chain_default;
    for fanout in [1u64, 4, 8] {
        let inst = chain::layered::<Count>(3, 64, fanout);
        let mut cluster = Cluster::new(8);
        let dist: Vec<DistRelation<Count>> = inst
            .rels
            .iter()
            .map(|r| DistRelation::scatter(&cluster, r))
            .collect();
        let est =
            estimate_out_chain_default(&mut cluster, &dist.iter().collect::<Vec<_>>(), &inst.attrs);
        assert!(
            est.total >= inst.out / 3 && est.total <= inst.out * 3,
            "fanout {fanout}: estimate {} vs exact {}",
            est.total,
            inst.out
        );
    }
}

/// Traffic conservation: what is received equals what the ledger records,
/// and the load can never be below total/(p·rounds).
#[test]
fn load_lower_bounded_by_average() {
    let (a, b, c) = (Attr(0), Attr(1), Attr(2));
    let q = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, c]);
    let inst = matrix::uniform::<Count>(&mut rng(13), (a, b, c), 500, 500, (90, 40, 90));
    let r = QueryEngine::new(8).run(&q, &[inst.r1, inst.r2]).unwrap();
    let avg = r.cost.total_units / (8 * r.cost.rounds.max(1));
    assert!(r.cost.load >= avg);
}

//! Property-based integration tests: randomized instances and shapes,
//! distributed results vs. the sequential oracle.

use mpcjoin::prelude::*;
use mpcjoin::{execute, execute_baseline, execute_sequential};
use proptest::prelude::*;

/// A random binary relation over bounded domains, annotated with small
/// counts (weights > 1 exercise ⊗ as well as ⊕).
fn rel_strategy(
    left: Attr,
    right: Attr,
    dom: u64,
    max_tuples: usize,
) -> impl Strategy<Value = Relation<Count>> {
    proptest::collection::btree_set((0..dom, 0..dom), 1..max_tuples).prop_map(move |set| {
        Relation::from_entries(
            Schema::binary(left, right),
            set.into_iter()
                .enumerate()
                .map(|(i, (x, y))| (vec![x, y], Count(1 + (i as u64 % 3))))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Matrix multiplication agrees with the oracle on arbitrary inputs
    /// (including heavily dangling ones), and with the baseline.
    #[test]
    fn matmul_agrees_with_oracle(
        r1 in rel_strategy(Attr(0), Attr(1), 12, 60),
        r2 in rel_strategy(Attr(1), Attr(2), 12, 60),
        p in 2usize..12,
    ) {
        let q = TreeQuery::new(
            vec![Edge::binary(Attr(0), Attr(1)), Edge::binary(Attr(1), Attr(2))],
            [Attr(0), Attr(2)],
        );
        let rels = [r1, r2];
        let result = execute(p, &q, &rels);
        let oracle = execute_sequential(&q, &rels);
        prop_assert!(result.output.semantically_eq(&oracle));
        let base = execute_baseline(p, &q, &rels);
        prop_assert!(base.output.semantically_eq(&oracle));
    }

    /// Three-hop line queries agree with the oracle.
    #[test]
    fn line_agrees_with_oracle(
        r1 in rel_strategy(Attr(0), Attr(1), 8, 40),
        r2 in rel_strategy(Attr(1), Attr(2), 8, 40),
        r3 in rel_strategy(Attr(2), Attr(3), 8, 40),
        p in 2usize..10,
    ) {
        let q = TreeQuery::new(
            vec![
                Edge::binary(Attr(0), Attr(1)),
                Edge::binary(Attr(1), Attr(2)),
                Edge::binary(Attr(2), Attr(3)),
            ],
            [Attr(0), Attr(3)],
        );
        let rels = [r1, r2, r3];
        let result = execute(p, &q, &rels);
        prop_assert!(result.output.semantically_eq(&execute_sequential(&q, &rels)));
    }

    /// Three-arm star queries agree with the oracle.
    #[test]
    fn star_agrees_with_oracle(
        r1 in rel_strategy(Attr(0), Attr(9), 7, 30),
        r2 in rel_strategy(Attr(1), Attr(9), 7, 30),
        r3 in rel_strategy(Attr(2), Attr(9), 7, 30),
        p in 2usize..10,
    ) {
        let q = TreeQuery::new(
            vec![
                Edge::binary(Attr(0), Attr(9)),
                Edge::binary(Attr(1), Attr(9)),
                Edge::binary(Attr(2), Attr(9)),
            ],
            [Attr(0), Attr(1), Attr(2)],
        );
        let rels = [r1, r2, r3];
        let result = execute(p, &q, &rels);
        prop_assert!(result.output.semantically_eq(&execute_sequential(&q, &rels)));
    }

    /// The minimal general twig agrees with the oracle.
    #[test]
    fn general_twig_agrees_with_oracle(
        e0 in rel_strategy(Attr(10), Attr(0), 5, 20),
        e1 in rel_strategy(Attr(10), Attr(1), 5, 20),
        bridge in rel_strategy(Attr(10), Attr(11), 5, 15),
        e2 in rel_strategy(Attr(11), Attr(2), 5, 20),
        e3 in rel_strategy(Attr(11), Attr(3), 5, 20),
    ) {
        let q = TreeQuery::new(
            vec![
                Edge::binary(Attr(10), Attr(0)),
                Edge::binary(Attr(10), Attr(1)),
                Edge::binary(Attr(10), Attr(11)),
                Edge::binary(Attr(11), Attr(2)),
                Edge::binary(Attr(11), Attr(3)),
            ],
            [Attr(0), Attr(1), Attr(2), Attr(3)],
        );
        let rels = [e0, e1, bridge, e2, e3];
        let result = execute(6, &q, &rels);
        prop_assert!(result.output.semantically_eq(&execute_sequential(&q, &rels)));
    }

    /// Internal output attributes (general tree, non-twig) agree with the
    /// oracle.
    #[test]
    fn internal_outputs_agree_with_oracle(
        r1 in rel_strategy(Attr(0), Attr(1), 6, 25),
        r2 in rel_strategy(Attr(1), Attr(2), 6, 25),
        r3 in rel_strategy(Attr(2), Attr(3), 6, 25),
    ) {
        // y = {A1, A2, A4}: A2 is an internal output → twig split at A2.
        let q = TreeQuery::new(
            vec![
                Edge::binary(Attr(0), Attr(1)),
                Edge::binary(Attr(1), Attr(2)),
                Edge::binary(Attr(2), Attr(3)),
            ],
            [Attr(0), Attr(1), Attr(3)],
        );
        let rels = [r1, r2, r3];
        let result = execute(6, &q, &rels);
        prop_assert!(result.output.semantically_eq(&execute_sequential(&q, &rels)));
    }
}

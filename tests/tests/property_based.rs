//! Randomized integration tests: random instances and shapes, distributed
//! results vs. the sequential oracle. Inputs come from the deterministic
//! in-tree generator with fixed seeds so every run checks the identical
//! case set and works offline.

use mpcjoin::mpc::DetRng;
use mpcjoin::prelude::*;
use mpcjoin::{execute_sequential, PlanChoice, QueryEngine};
use std::collections::BTreeSet;

const CASES: u64 = 24;

/// A random binary relation over bounded domains, annotated with small
/// counts (weights > 1 exercise ⊗ as well as ⊕).
fn random_rel(
    rng: &mut DetRng,
    left: Attr,
    right: Attr,
    dom: u64,
    max_tuples: usize,
) -> Relation<Count> {
    let n = rng.gen_range(1..max_tuples);
    let set: BTreeSet<(u64, u64)> = (0..n)
        .map(|_| (rng.gen_range(0..dom), rng.gen_range(0..dom)))
        .collect();
    Relation::from_entries(
        Schema::binary(left, right),
        set.into_iter()
            .enumerate()
            .map(|(i, (x, y))| (vec![x, y], Count(1 + (i as u64 % 3))))
            .collect(),
    )
}

/// Matrix multiplication agrees with the oracle on arbitrary inputs
/// (including heavily dangling ones), and with the baseline.
#[test]
fn matmul_agrees_with_oracle() {
    let mut rng = DetRng::seed_from_u64(0xB001);
    for _ in 0..CASES {
        let r1 = random_rel(&mut rng, Attr(0), Attr(1), 12, 60);
        let r2 = random_rel(&mut rng, Attr(1), Attr(2), 12, 60);
        let p = rng.gen_range(2usize..12);
        let q = TreeQuery::new(
            vec![
                Edge::binary(Attr(0), Attr(1)),
                Edge::binary(Attr(1), Attr(2)),
            ],
            [Attr(0), Attr(2)],
        );
        let rels = [r1, r2];
        let result = QueryEngine::new(p).run(&q, &rels).unwrap();
        let oracle = execute_sequential(&q, &rels);
        assert!(result.output.semantically_eq(&oracle));
        let base = QueryEngine::new(p)
            .plan(PlanChoice::Baseline)
            .run(&q, &rels)
            .unwrap();
        assert!(base.output.semantically_eq(&oracle));
    }
}

/// Three-hop line queries agree with the oracle.
#[test]
fn line_agrees_with_oracle() {
    let mut rng = DetRng::seed_from_u64(0xB002);
    for _ in 0..CASES {
        let r1 = random_rel(&mut rng, Attr(0), Attr(1), 8, 40);
        let r2 = random_rel(&mut rng, Attr(1), Attr(2), 8, 40);
        let r3 = random_rel(&mut rng, Attr(2), Attr(3), 8, 40);
        let p = rng.gen_range(2usize..10);
        let q = TreeQuery::new(
            vec![
                Edge::binary(Attr(0), Attr(1)),
                Edge::binary(Attr(1), Attr(2)),
                Edge::binary(Attr(2), Attr(3)),
            ],
            [Attr(0), Attr(3)],
        );
        let rels = [r1, r2, r3];
        let result = QueryEngine::new(p).run(&q, &rels).unwrap();
        assert!(result
            .output
            .semantically_eq(&execute_sequential(&q, &rels)));
    }
}

/// Three-arm star queries agree with the oracle.
#[test]
fn star_agrees_with_oracle() {
    let mut rng = DetRng::seed_from_u64(0xB003);
    for _ in 0..CASES {
        let r1 = random_rel(&mut rng, Attr(0), Attr(9), 7, 30);
        let r2 = random_rel(&mut rng, Attr(1), Attr(9), 7, 30);
        let r3 = random_rel(&mut rng, Attr(2), Attr(9), 7, 30);
        let p = rng.gen_range(2usize..10);
        let q = TreeQuery::new(
            vec![
                Edge::binary(Attr(0), Attr(9)),
                Edge::binary(Attr(1), Attr(9)),
                Edge::binary(Attr(2), Attr(9)),
            ],
            [Attr(0), Attr(1), Attr(2)],
        );
        let rels = [r1, r2, r3];
        let result = QueryEngine::new(p).run(&q, &rels).unwrap();
        assert!(result
            .output
            .semantically_eq(&execute_sequential(&q, &rels)));
    }
}

/// The minimal general twig agrees with the oracle.
#[test]
fn general_twig_agrees_with_oracle() {
    let mut rng = DetRng::seed_from_u64(0xB004);
    for _ in 0..CASES {
        let e0 = random_rel(&mut rng, Attr(10), Attr(0), 5, 20);
        let e1 = random_rel(&mut rng, Attr(10), Attr(1), 5, 20);
        let bridge = random_rel(&mut rng, Attr(10), Attr(11), 5, 15);
        let e2 = random_rel(&mut rng, Attr(11), Attr(2), 5, 20);
        let e3 = random_rel(&mut rng, Attr(11), Attr(3), 5, 20);
        let q = TreeQuery::new(
            vec![
                Edge::binary(Attr(10), Attr(0)),
                Edge::binary(Attr(10), Attr(1)),
                Edge::binary(Attr(10), Attr(11)),
                Edge::binary(Attr(11), Attr(2)),
                Edge::binary(Attr(11), Attr(3)),
            ],
            [Attr(0), Attr(1), Attr(2), Attr(3)],
        );
        let rels = [e0, e1, bridge, e2, e3];
        let result = QueryEngine::new(6).run(&q, &rels).unwrap();
        assert!(result
            .output
            .semantically_eq(&execute_sequential(&q, &rels)));
    }
}

/// Internal output attributes (general tree, non-twig) agree with the
/// oracle.
#[test]
fn internal_outputs_agree_with_oracle() {
    let mut rng = DetRng::seed_from_u64(0xB005);
    for _ in 0..CASES {
        let r1 = random_rel(&mut rng, Attr(0), Attr(1), 6, 25);
        let r2 = random_rel(&mut rng, Attr(1), Attr(2), 6, 25);
        let r3 = random_rel(&mut rng, Attr(2), Attr(3), 6, 25);
        // y = {A1, A2, A4}: A2 is an internal output → twig split at A2.
        let q = TreeQuery::new(
            vec![
                Edge::binary(Attr(0), Attr(1)),
                Edge::binary(Attr(1), Attr(2)),
                Edge::binary(Attr(2), Attr(3)),
            ],
            [Attr(0), Attr(1), Attr(3)],
        );
        let rels = [r1, r2, r3];
        let result = QueryEngine::new(6).run(&q, &rels).unwrap();
        assert!(result
            .output
            .semantically_eq(&execute_sequential(&q, &rels)));
    }
}

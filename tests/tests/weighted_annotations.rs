//! Non-trivial annotation weights through every pipeline stage.
//!
//! Most workload generators annotate tuples with `1`, which would mask a
//! bug that forgets to ⊗-combine annotations (e.g. in the §7 reduce-step
//! folds or the arm-shrinking passes). These tests drive weighted
//! counting-semiring annotations through each algorithm and compare the
//! exact aggregated values against the oracle.

use mpcjoin::prelude::*;
use mpcjoin::{execute_sequential, PlanKind, QueryEngine};

fn weighted(
    x: Attr,
    y: Attr,
    tuples: impl IntoIterator<Item = (u64, u64, u64)>,
) -> Relation<Count> {
    Relation::from_entries(
        Schema::binary(x, y),
        tuples
            .into_iter()
            .map(|(a, b, w)| (vec![a, b], Count(w)))
            .collect(),
    )
}

#[test]
fn weighted_matmul() {
    let (a, b, c) = (Attr(0), Attr(1), Attr(2));
    let q = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, c]);
    let rels = vec![
        weighted(a, b, (0..60).map(|i| (i % 12, i % 7, 1 + i % 5))),
        weighted(b, c, (0..60).map(|i| (i % 7, i % 9, 1 + i % 3))),
    ];
    let result = QueryEngine::new(8).run(&q, &rels).unwrap();
    assert!(result
        .output
        .semantically_eq(&execute_sequential(&q, &rels)));
}

#[test]
fn weighted_reduce_fold() {
    // y = {A}: the whole chain folds into R1 by §7 reduce steps, each
    // fold ⊗-combining aggregated annotations. Exact weighted counts must
    // survive three folds.
    let attrs: Vec<Attr> = (0..4).map(Attr).collect();
    let q = TreeQuery::new(
        vec![
            Edge::binary(attrs[0], attrs[1]),
            Edge::binary(attrs[1], attrs[2]),
            Edge::binary(attrs[2], attrs[3]),
        ],
        [attrs[0]],
    );
    let rels = vec![
        weighted(attrs[0], attrs[1], [(1, 10, 2), (1, 11, 3), (2, 10, 5)]),
        weighted(attrs[1], attrs[2], [(10, 20, 7), (11, 21, 11), (10, 21, 1)]),
        weighted(attrs[2], attrs[3], [(20, 30, 13), (21, 30, 2)]),
    ];
    let result = QueryEngine::new(4).run(&q, &rels).unwrap();
    let oracle = execute_sequential(&q, &rels);
    assert!(result.output.semantically_eq(&oracle));
    // Hand-checked: a=1 paths: (1,10,20,30):2·7·13=182, (1,10,21,30):2·1·2=4,
    // (1,11,21,30):3·11·2=66 → 252. a=2: (2,10,20,30):5·7·13=455,
    // (2,10,21,30):5·1·2=10 → 465.
    assert_eq!(
        oracle.canonical(),
        vec![(vec![1], Count(252)), (vec![2], Count(465))]
    );
}

#[test]
fn weighted_line_query() {
    let attrs: Vec<Attr> = (0..4).map(Attr).collect();
    let q = TreeQuery::new(
        vec![
            Edge::binary(attrs[0], attrs[1]),
            Edge::binary(attrs[1], attrs[2]),
            Edge::binary(attrs[2], attrs[3]),
        ],
        [attrs[0], attrs[3]],
    );
    let rels = vec![
        weighted(
            attrs[0],
            attrs[1],
            (0..40).map(|i| (i % 8, i % 5, 1 + i % 4)),
        ),
        weighted(
            attrs[1],
            attrs[2],
            (0..40).map(|i| (i % 5, i % 6, 1 + i % 2)),
        ),
        weighted(
            attrs[2],
            attrs[3],
            (0..40).map(|i| (i % 6, i % 7, 1 + i % 3)),
        ),
    ];
    let result = QueryEngine::new(8).run(&q, &rels).unwrap();
    assert_eq!(result.plan, PlanKind::Line);
    assert!(result
        .output
        .semantically_eq(&execute_sequential(&q, &rels)));
}

#[test]
fn weighted_star_query() {
    let b = Attr(9);
    let q = TreeQuery::new(
        vec![
            Edge::binary(Attr(0), b),
            Edge::binary(Attr(1), b),
            Edge::binary(Attr(2), b),
        ],
        [Attr(0), Attr(1), Attr(2)],
    );
    let rels = vec![
        weighted(Attr(0), b, (0..24).map(|i| (i % 6, i % 3, 1 + i % 5))),
        weighted(Attr(1), b, (0..24).map(|i| (i % 5, i % 3, 1 + i % 4))),
        weighted(Attr(2), b, (0..24).map(|i| (i % 4, i % 3, 1 + i % 2))),
    ];
    let result = QueryEngine::new(8).run(&q, &rels).unwrap();
    assert_eq!(result.plan, PlanKind::Star);
    assert!(result
        .output
        .semantically_eq(&execute_sequential(&q, &rels)));
}

#[test]
fn weighted_general_twig() {
    let (b1, b2) = (Attr(10), Attr(11));
    let q = TreeQuery::new(
        vec![
            Edge::binary(b1, Attr(0)),
            Edge::binary(b1, Attr(1)),
            Edge::binary(b1, b2),
            Edge::binary(b2, Attr(2)),
            Edge::binary(b2, Attr(3)),
        ],
        [Attr(0), Attr(1), Attr(2), Attr(3)],
    );
    let rels = vec![
        weighted(b1, Attr(0), (0..16).map(|i| (i % 2, i % 5, 1 + i % 3))),
        weighted(b1, Attr(1), (0..16).map(|i| (i % 2, i % 4, 1 + i % 2))),
        weighted(b1, b2, [(0, 0, 3), (0, 1, 2), (1, 1, 7)]),
        weighted(b2, Attr(2), (0..16).map(|i| (i % 2, i % 6, 1 + i % 4))),
        weighted(b2, Attr(3), (0..16).map(|i| (i % 2, i % 3, 1 + i % 5))),
    ];
    let result = QueryEngine::new(8).run(&q, &rels).unwrap();
    assert_eq!(result.plan, PlanKind::Tree);
    assert!(result
        .output
        .semantically_eq(&execute_sequential(&q, &rels)));
}

#[test]
fn duplicate_rows_in_bag_inputs() {
    // Bags: the same row appearing twice with different weights must
    // behave as its coalesced sum through the whole pipeline.
    let (a, b, c) = (Attr(0), Attr(1), Attr(2));
    let q = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, c]);
    let rels = vec![
        weighted(a, b, [(1, 5, 2), (1, 5, 3), (2, 5, 1)]),
        weighted(b, c, [(5, 9, 4), (5, 9, 1)]),
    ];
    let result = QueryEngine::new(4).run(&q, &rels).unwrap();
    let oracle = execute_sequential(&q, &rels);
    assert!(result.output.semantically_eq(&oracle));
    // (1,9): (2+3)·(4+1) = 25; (2,9): 1·5 = 5.
    assert_eq!(
        oracle.canonical(),
        vec![(vec![1, 9], Count(25)), (vec![2, 9], Count(5))]
    );
}

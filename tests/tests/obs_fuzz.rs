//! Seeded fuzz coverage for the observability plane's readers:
//! `mpcjoin-log-v1` lines (`LogEventView::parse` / `check_log`) and
//! `mpcjoin-serverstats-v1` payloads (`StatsView::parse`).
//!
//! Same discipline as `json_fuzz.rs`: deterministic `DetRng`, no
//! third-party fuzz framework. The contract under test is that the
//! readers never panic on truncated, corrupted, or arbitrary input,
//! that every rejection is a contextual message (not a bare `false`),
//! and that valid documents keep round-tripping.

use mpcjoin::mpc::json::Json;
use mpcjoin::mpc::DetRng;
use mpcjoin_server::obs::{check_log, LogEventView, StatsView};
use mpcjoin_server::{Scheduler, ServerConfig};

const LEVELS: [&str; 3] = ["info", "warn", "error"];
const EVENTS: [&str; 7] = [
    "server_start",
    "conn_open",
    "request",
    "reject",
    "complete",
    "drain",
    "shutdown",
];

/// Deterministically generate one valid `mpcjoin-log-v1` line with the
/// event's required members plus random extras.
fn gen_log_line(rng: &mut DetRng, ts_ns: u64) -> String {
    let event = EVENTS[rng.gen_range(0usize..EVENTS.len())];
    let mut members = vec![
        (
            "schema".to_string(),
            Json::Str(mpcjoin_server::LOG_SCHEMA.into()),
        ),
        ("ts_ns".to_string(), Json::Num(ts_ns as f64)),
        (
            "level".to_string(),
            Json::Str(LEVELS[rng.gen_range(0usize..LEVELS.len())].into()),
        ),
        ("event".to_string(), Json::Str(event.into())),
    ];
    match event {
        "request" => members.push(("kind".into(), Json::Str("query".into()))),
        "reject" => members.push(("reason".into(), Json::Str("overloaded".into()))),
        "complete" => members.extend([
            ("kind".into(), Json::Str("query".into())),
            ("outcome".into(), Json::Str("result".into())),
            ("cached".into(), Json::Bool(rng.gen_bool(0.5))),
        ]),
        _ => {}
    }
    for extra in 0..rng.gen_range(0usize..3) {
        members.push((
            format!("x{extra}"),
            match rng.gen_range(0u32..3) {
                0 => Json::Num(rng.gen_range(0u64..1_000_000) as f64),
                1 => Json::Str("s\"\\\n".into()),
                _ => Json::Null,
            },
        ));
    }
    Json::Obj(members)
        .to_string_compact()
        .expect("generated lines are finite")
}

/// The hardening contract: parsing returns (never panics) and failures
/// carry a non-empty, contextual message.
fn assert_line_hardened(input: &str) {
    if let Err(msg) = LogEventView::parse(input) {
        assert!(!msg.is_empty(), "empty error for {input:?}");
    }
}

#[test]
fn truncated_log_lines_never_panic() {
    let mut rng = DetRng::seed_from_u64(0x10C);
    for round in 0..100 {
        let line = gen_log_line(&mut rng, round);
        for (cut, _) in line.char_indices() {
            let prefix = &line[..cut];
            if prefix == line {
                continue;
            }
            assert!(
                LogEventView::parse(prefix).is_err(),
                "round {round}: strict prefix {prefix:?} of a log object parsed"
            );
            assert_line_hardened(prefix);
        }
    }
}

#[test]
fn corrupted_log_lines_never_panic() {
    let mut rng = DetRng::seed_from_u64(0xBAD10C);
    for _ in 0..300 {
        let line = gen_log_line(&mut rng, 1);
        let mut bytes = line.clone().into_bytes();
        for _ in 0..rng.gen_range(1usize..4) {
            let at = rng.gen_range(0usize..bytes.len());
            bytes[at] = (rng.next_u64() & 0xff) as u8;
        }
        // The wire/file layer hands the reader &str, so skip non-UTF-8
        // mutations — they can't reach the parser.
        if let Ok(mutated) = String::from_utf8(bytes) {
            assert_line_hardened(&mutated);
        }
    }
}

#[test]
fn log_byte_soup_never_panics() {
    let mut rng = DetRng::seed_from_u64(0x50C5);
    for _ in 0..300 {
        let len = rng.gen_range(0usize..80);
        let soup: String = (0..len)
            .map(|_| {
                const SIG: &[u8] = b"{}[]\",:\\-0123456789.schema_tsnleveint";
                if rng.gen_bool(0.7) {
                    SIG[rng.gen_range(0usize..SIG.len())] as char
                } else {
                    char::from_u32(rng.gen_range(0x20u32..0x7f)).unwrap()
                }
            })
            .collect();
        assert_line_hardened(&soup);
    }
}

#[test]
fn check_log_pinpoints_broken_lines_and_keeps_good_ones() {
    let mut rng = DetRng::seed_from_u64(0xF11E);
    for _ in 0..50 {
        // A log of valid lines with monotone timestamps, with a known
        // set of lines smashed.
        let total = rng.gen_range(4usize..12);
        let mut lines: Vec<String> = (0..total)
            .map(|i| gen_log_line(&mut rng, (i as u64 + 1) * 100))
            .collect();
        let mut broken = std::collections::BTreeSet::new();
        for _ in 0..rng.gen_range(1usize..3) {
            let at = rng.gen_range(0usize..lines.len());
            lines[at] = format!("{{broken #{at}");
            broken.insert(at + 1); // 1-indexed, like the errors
        }
        let text = lines.join("\n");
        let errors = check_log(&text).expect_err("smashed lines must fail validation");
        for want in &broken {
            assert!(
                errors
                    .iter()
                    .any(|e| e.starts_with(&format!("line {want}:"))),
                "no error names broken line {want}: {errors:?}"
            );
        }
    }
    // And valid logs keep validating (round-trip sanity).
    let mut rng = DetRng::seed_from_u64(0x600D);
    let text: Vec<String> = (0..20).map(|i| gen_log_line(&mut rng, i * 7 + 1)).collect();
    let summary = check_log(&text.join("\n")).expect("valid log validates");
    assert_eq!(summary.lines, 20);
}

#[test]
fn check_log_rejects_backwards_timestamps() {
    let mut rng = DetRng::seed_from_u64(0x7155);
    let early = gen_log_line(&mut rng, 500);
    let late = gen_log_line(&mut rng, 100);
    let errors = check_log(&format!("{early}\n{late}")).expect_err("non-monotone ts");
    assert!(errors.iter().any(|e| e.contains("backwards")), "{errors:?}");
}

/// A real (empty-workload) serverstats payload straight from the
/// scheduler — the canonical valid input.
fn real_stats_payload() -> String {
    let sched = Scheduler::new(ServerConfig::default());
    let doc = sched.stats_doc().to_string_sanitized();
    sched.shutdown();
    doc
}

#[test]
fn stats_payload_round_trips_and_survives_truncation() {
    let text = real_stats_payload();
    let view = StatsView::parse(&text).expect("real payload parses");
    assert_eq!(view.num(&["sched", "completed"]), Some(0));
    assert_eq!(view.counter("no.such.counter"), 0);
    assert_eq!(view.latency_quantile("total", 0.5), Some(0));

    for (cut, _) in text.char_indices() {
        let prefix = &text[..cut];
        if prefix == text {
            continue;
        }
        let err = StatsView::parse(prefix).expect_err("strict prefix cannot validate");
        assert!(!err.is_empty());
    }
}

#[test]
fn corrupted_stats_payloads_never_panic() {
    let text = real_stats_payload();
    let mut rng = DetRng::seed_from_u64(0x57A75);
    for _ in 0..300 {
        let mut bytes = text.clone().into_bytes();
        for _ in 0..rng.gen_range(1usize..4) {
            let at = rng.gen_range(0usize..bytes.len());
            bytes[at] = (rng.next_u64() & 0xff) as u8;
        }
        if let Ok(mutated) = String::from_utf8(bytes) {
            if let Ok(view) = StatsView::parse(&mutated) {
                // Still-valid mutations must still answer queries
                // without panicking.
                let _ = view.num(&["sched", "completed"]);
                let _ = view.latency_quantile("total", 0.95);
                let _ = view.counter("error.overloaded");
            }
        }
    }
}

#[test]
fn stats_schema_tag_is_enforced() {
    let text = real_stats_payload().replace("mpcjoin-serverstats-v1", "mpcjoin-serverstats-v0");
    let err = StatsView::parse(&text).expect_err("wrong schema tag");
    assert!(err.contains("schema"), "{err}");
}

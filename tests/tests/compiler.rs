//! Query-compiler integration: every enumerated physical alternative is
//! correct (oracle-verified, bit-identical canonical output) on the
//! classifier's edge cases, the cost-based selector never regresses the
//! heuristic dispatch on the Table-1 workloads, and the selector's
//! predicted bound is *the same number* the post-run auditor checks —
//! one formula, shared by construction.

use mpcjoin::compiler::{applicable, predict_bound, render_query};
use mpcjoin::prelude::*;
use mpcjoin::query::parse_query;
use mpcjoin::workload::{chain, matrix, star, trees};
use mpcjoin::{execute_sequential, QueryEngine};

/// Force every applicable physical plan and require each one's gathered
/// canonical output to be bit-identical to the sequential oracle's.
fn all_plans_match_oracle(q: &TreeQuery, rels: &[Relation<Count>], p: usize) {
    let oracle = execute_sequential(q, rels).canonical();
    for kind in applicable(q) {
        let result = QueryEngine::new(p)
            .plan(PlanChoice::Force(kind))
            .run(q, rels)
            .unwrap_or_else(|e| panic!("forced {kind:?} failed: {e}"));
        assert_eq!(
            result.output.canonical(),
            oracle,
            "plan {kind:?} disagrees with the oracle"
        );
    }
}

#[test]
fn single_edge_query_under_every_plan() {
    let (a, b) = (Attr(0), Attr(1));
    let q = TreeQuery::new(vec![Edge::binary(a, b)], [a]);
    let rels = vec![Relation::<Count>::binary_ones(
        a,
        b,
        (0..40u64).map(|i| (i % 7, i % 11)),
    )];
    all_plans_match_oracle(&q, &rels, 4);
}

#[test]
fn all_attributes_output_free_connex_under_every_plan() {
    // Every attribute is in the head: the free-connex case where no
    // aggregation happens at all.
    let (a, b, c) = (Attr(0), Attr(1), Attr(2));
    let q = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, b, c]);
    let rels = vec![
        Relation::<Count>::binary_ones(a, b, (0..60u64).map(|i| (i % 9, i % 6))),
        Relation::<Count>::binary_ones(b, c, (0..60u64).map(|i| (i % 6, i % 8))),
    ];
    all_plans_match_oracle(&q, &rels, 4);
}

#[test]
fn unary_only_residual_under_every_plan() {
    // After the §7 reduction folds the binary edges into the output
    // attribute, only unary structure remains.
    let (a, b, c) = (Attr(0), Attr(1), Attr(2));
    let q = TreeQuery::new(
        vec![Edge::binary(a, b), Edge::binary(a, c), Edge::unary(a)],
        [a],
    );
    let rels = vec![
        Relation::<Count>::binary_ones(a, b, (0..30u64).map(|i| (i % 5, i % 4))),
        Relation::<Count>::binary_ones(a, c, (0..30u64).map(|i| (i % 5, i % 3))),
        Relation::<Count>::from_entries(
            Schema::unary(a),
            (0..5u64).map(|i| (vec![i], Count(1))).collect(),
        ),
    ];
    all_plans_match_oracle(&q, &rels, 4);
}

#[test]
fn starlike_twig_overlap_under_every_plan() {
    // Star-like (center + one two-hop arm) is also a twig: the
    // classifier must pick one, and every alternative must still agree.
    let (center, mid) = (Attr(9), Attr(10));
    let q = TreeQuery::new(
        vec![
            Edge::binary(center, Attr(0)),
            Edge::binary(center, mid),
            Edge::binary(mid, Attr(1)),
            Edge::binary(center, Attr(2)),
        ],
        [Attr(0), Attr(1), Attr(2)],
    );
    let rels = vec![
        Relation::<Count>::binary_ones(center, Attr(0), (0..24u64).map(|i| (i % 4, i % 7))),
        Relation::<Count>::binary_ones(center, mid, (0..24u64).map(|i| (i % 4, i % 5))),
        Relation::<Count>::binary_ones(mid, Attr(1), (0..24u64).map(|i| (i % 5, i % 6))),
        Relation::<Count>::binary_ones(center, Attr(2), (0..24u64).map(|i| (i % 4, i % 3))),
    ];
    all_plans_match_oracle(&q, &rels, 8);
}

/// The Table-1 workload grid at smoke scale: (query, instance) pairs.
fn table1_workloads() -> Vec<(String, TreeQuery, Vec<Relation<Count>>)> {
    let (a, b, c) = (Attr(0), Attr(1), Attr(2));
    let mut cases = Vec::new();

    let mm = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, c]);
    for side in [2u64, 8] {
        let inst = matrix::blocks::<Count>((a, b, c), (96 / (4 * side)).max(1), side, 2);
        cases.push((
            format!("mm side={side}"),
            mm.clone(),
            vec![inst.r1, inst.r2],
        ));
    }
    for k in [2u64, 8] {
        let inst = chain::funnel::<Count>(8, k, 4);
        cases.push((format!("line k={k}"), inst.query, inst.rels));
    }
    for centers in [1u64, 4] {
        let inst = star::overlapping::<Count>(3, centers, 8);
        cases.push((format!("star centers={centers}"), inst.query, inst.rels));
    }
    let q = trees::figure3_query();
    for centers in [2u64, 4] {
        let inst = trees::overlapping_instance::<Count>(&q, centers, 3);
        cases.push((format!("tree centers={centers}"), inst.query, inst.rels));
    }
    cases
}

#[test]
fn selector_and_auditor_share_one_bound_formula() {
    // Acceptance criterion: on every Table-1 workload, the bound the
    // cost-based selector predicted for the plan that ran is the exact
    // f64 the auditor checked the measured load against.
    let p = 8usize;
    for (name, q, rels) in table1_workloads() {
        let result = QueryEngine::new(p).run(&q, &rels).unwrap();
        let sizes: Vec<u64> = rels.iter().map(|r| r.len() as u64).collect();
        let predicted = predict_bound(
            result.plan,
            &q,
            &sizes,
            result.output.len() as u64,
            p as u64,
        );
        assert_eq!(
            result.audit.bound.to_bits(),
            predicted.to_bits(),
            "{name}: selector bound {predicted} != audited bound {}",
            result.audit.bound
        );
        assert!(result.audit.within, "{name}: bound violated");
    }
}

#[test]
fn cost_based_never_loses_to_the_heuristic_on_table1() {
    let p = 8usize;
    for (name, q, rels) in table1_workloads() {
        let cost_based = QueryEngine::new(p)
            .plan(PlanChoice::CostBased)
            .run(&q, &rels)
            .unwrap();
        let heuristic = QueryEngine::new(p)
            .plan(PlanChoice::Heuristic)
            .run(&q, &rels)
            .unwrap();
        assert!(
            cost_based.cost.load <= heuristic.cost.load,
            "{name}: cost-based load {} > heuristic load {}",
            cost_based.cost.load,
            heuristic.cost.load
        );
        assert_eq!(
            cost_based.output.canonical(),
            heuristic.output.canonical(),
            "{name}: plans disagree"
        );
    }
}

#[test]
fn every_plan_is_oracle_correct_on_table1() {
    let p = 8usize;
    for (name, q, rels) in table1_workloads() {
        let oracle = execute_sequential(&q, &rels).canonical();
        for kind in applicable(&q) {
            let result = QueryEngine::new(p)
                .plan(PlanChoice::Force(kind))
                .run(&q, &rels)
                .unwrap_or_else(|e| panic!("{name}: forced {kind:?} failed: {e}"));
            assert_eq!(
                result.output.canonical(),
                oracle,
                "{name}: plan {kind:?} disagrees with the oracle"
            );
        }
    }
}

/// Deterministic xorshift for the round-trip generator.
struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[test]
fn random_tree_queries_round_trip_through_the_printer() {
    // Property: render_query(q) re-parses to the same hypergraph and
    // output set, for random chains with unary filters hanging off them.
    let mut rng = Lcg(0x5deece66d);
    for _ in 0..50 {
        let len = 1 + rng.below(5);
        let mut edges: Vec<Edge> = (0..len)
            .map(|i| Edge::binary(Attr(i as u32), Attr(i as u32 + 1)))
            .collect();
        if rng.below(2) == 0 {
            edges.push(Edge::unary(Attr(rng.below(len + 1) as u32)));
        }
        // Output: a nonempty random subset of the path vertices.
        let mut output = vec![Attr(rng.below(len + 1) as u32)];
        if rng.below(2) == 0 {
            output.push(Attr(rng.below(len + 1) as u32));
        }
        let q = TreeQuery::new(edges, output);
        let text = render_query(&q, None, None);
        let reparsed = parse_query(&text)
            .unwrap_or_else(|e| panic!("printer emitted unparseable `{text}`: {e}"));
        assert_eq!(reparsed.query.edges(), q.edges(), "{text}");
        assert_eq!(reparsed.query.output(), q.output(), "{text}");
    }
}

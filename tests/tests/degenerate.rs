//! Degenerate inputs through the full engine: empty relations, p = 1
//! clusters, and OUT = 0 instances must execute cleanly, audit cleanly,
//! and keep the cost ledger bit-identical whether or not instrumentation
//! (tracing, metrics, or a fault plane) is enabled, on both execution
//! backends.

use mpcjoin::prelude::*;
use std::time::Duration;

const A: Attr = Attr(0);
const B: Attr = Attr(1);
const C: Attr = Attr(2);

fn mm_query() -> TreeQuery {
    TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C])
}

/// Run `q` on every combination of {plain, instrumented} × {serial,
/// threaded}, assert the ledgers are bit-identical and every run carries
/// an audit verdict, and return the plain run.
fn run_all_ways(p: usize, q: &TreeQuery, rels: &[Relation<Count>]) -> ExecutionResult<Count> {
    let plain = QueryEngine::new(p).run(q, rels).expect("valid instance");
    assert!(plain.trace.is_none() && plain.metrics.is_none());
    for threads in [1usize, 4] {
        let instrumented = QueryEngine::new(p)
            .threads(threads)
            .trace(true)
            .metrics(true)
            .run(q, rels)
            .expect("valid instance");
        assert_eq!(
            plain.cost, instrumented.cost,
            "instrumentation must be invisible in the ledger ({threads} threads)"
        );
        assert!(plain.output.semantically_eq(&instrumented.output));
        assert_eq!(instrumented.audit, plain.audit, "{threads} threads");
        let snap = instrumented.metrics.expect("metrics were on");
        assert_eq!(
            snap.per_server.iter().sum::<u64>(),
            plain.cost.total_units,
            "metrics account for exactly the ledger's traffic"
        );
    }
    // Degenerate inputs under faults: the plane must recover these runs
    // (mostly empty exchanges) just as invisibly as instrumentation.
    let faulted = QueryEngine::new(p)
        .faults(
            FaultPlan::new(5)
                .retries(10)
                .drop_window(0, 3, 0.3)
                .duplicate(1, 0.5)
                .reorder(0)
                .straggle(0, 0, Duration::from_micros(20)),
        )
        .run(q, rels)
        .expect("the default retry policy absorbs this schedule");
    assert_eq!(
        plain.cost, faulted.cost,
        "fault recovery must be invisible in the ledger"
    );
    assert!(plain.output.semantically_eq(&faulted.output));
    assert!(faulted.recovery.expect("plan installed").recovered());
    assert_eq!(plain.audit.measured, plain.cost.load);
    plain
}

#[test]
fn empty_relations_run_audit_and_stay_consistent() {
    let q = mm_query();
    let rels = vec![
        Relation::<Count>::binary_ones(A, B, []),
        Relation::<Count>::binary_ones(B, C, []),
    ];
    let r = run_all_ways(4, &q, &rels);
    assert_eq!(r.output.len(), 0);
    assert!(r.audit.within, "an empty run cannot violate any bound");
    assert_eq!(r.audit.ratio, 0.0);
}

#[test]
fn one_empty_relation_among_nonempty_ones() {
    let q = mm_query();
    let rels = vec![
        Relation::<Count>::binary_ones(A, B, (0..40u64).map(|i| (i, i % 8))),
        Relation::<Count>::binary_ones(B, C, []),
    ];
    let r = run_all_ways(4, &q, &rels);
    assert_eq!(r.output.len(), 0, "dangling removal empties the join");
    assert!(r.audit.within);
}

#[test]
fn single_server_cluster_runs_every_plan() {
    let q = mm_query();
    let rels = vec![
        Relation::<Count>::binary_ones(A, B, (0..30u64).map(|i| (i % 6, i % 5))),
        Relation::<Count>::binary_ones(B, C, (0..30u64).map(|i| (i % 5, i % 7))),
    ];
    let r = run_all_ways(1, &q, &rels);
    assert!(!r.output.is_empty());
    // On p = 1 every unit lands on the only server; the audit's additive
    // term keeps tiny statistics exchanges from flagging.
    assert!(r.audit.additive >= 1.0);
    let base = QueryEngine::new(1)
        .plan(PlanChoice::Baseline)
        .run(&q, &rels)
        .expect("baseline on p = 1");
    assert!(base.output.semantically_eq(&r.output));
}

#[test]
fn out_zero_with_nonempty_inputs() {
    // Both relations are non-empty but share no B values: OUT = 0 after
    // non-trivial dangling removal.
    let q = mm_query();
    let rels = vec![
        Relation::<Count>::binary_ones(A, B, (0..25u64).map(|i| (i, 2 * i))),
        Relation::<Count>::binary_ones(B, C, (0..25u64).map(|i| (2 * i + 1, i))),
    ];
    let r = run_all_ways(4, &q, &rels);
    assert_eq!(r.output.len(), 0);
    assert!(r.audit.within, "{}", r.audit);
}

#[test]
fn degenerate_star_and_line_shapes() {
    // A 3-arm star with one empty arm, and a line whose middle hop is a
    // single tuple.
    let (x, y, z, hub) = (Attr(0), Attr(1), Attr(2), Attr(3));
    let star = TreeQuery::new(
        vec![
            Edge::binary(x, hub),
            Edge::binary(y, hub),
            Edge::binary(z, hub),
        ],
        [x, y, z],
    );
    let star_rels = vec![
        Relation::<Count>::binary_ones(x, hub, (0..12u64).map(|i| (i, i % 3))),
        Relation::<Count>::binary_ones(y, hub, []),
        Relation::<Count>::binary_ones(z, hub, (0..12u64).map(|i| (i, i % 3))),
    ];
    let r = run_all_ways(4, &star, &star_rels);
    assert_eq!(r.output.len(), 0);

    let line = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, B, C]);
    let line_rels = vec![
        Relation::<Count>::binary_ones(A, B, (0..10u64).map(|i| (i, 0))),
        Relation::<Count>::binary_ones(B, C, [(0, 7)]),
    ];
    let r = run_all_ways(4, &line, &line_rels);
    assert_eq!(r.output.len(), 10);
    assert!(r.audit.within, "{}", r.audit);
}

//! Engine-reuse leakage audit (the serving layer's soundness premise).
//!
//! `mpcjoin-serve` pools `QueryEngine`s and reuses them across requests,
//! sessions, and semirings, and its result cache replays stored bodies
//! for repeated requests. Both are sound only if a run's outcome is a
//! pure function of `(query, instance, configuration)` — i.e. if no
//! state leaks from one `run` to the next through the engine value.
//!
//! The audit of the engine confirms this *by construction*: `QueryEngine`
//! holds only configuration (`p`, threads, trace/metrics flags, plan
//! choice, fault plan) and `run` builds a fresh `Cluster` — ledger, RNG
//! state, fault plane, metrics — per call (`crates/core/src/planner.rs`).
//! These tests pin the property behaviorally so a future cached or
//! memoized field cannot silently break it: a reused engine's outputs
//! and exact cost ledgers must be bit-identical to fresh-engine runs,
//! under interleaving, across semirings, and after error and recovery
//! paths.

use mpcjoin::prelude::*;
use mpcjoin::QueryEngine;

const A: Attr = Attr(0);
const B: Attr = Attr(1);
const C: Attr = Attr(2);
const D: Attr = Attr(3);

fn mm_query() -> TreeQuery {
    TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C])
}

fn line_query() -> TreeQuery {
    TreeQuery::new(
        vec![Edge::binary(A, B), Edge::binary(B, C), Edge::binary(C, D)],
        [A, D],
    )
}

fn mm_instance(shift: u64) -> Vec<Relation<Count>> {
    vec![
        Relation::binary_ones(A, B, (0..60u64).map(|i| ((i + shift) % 12, i % 7))),
        Relation::binary_ones(B, C, (0..60u64).map(|i| (i % 7, (i + shift) % 11))),
    ]
}

fn line_instance(shift: u64) -> Vec<Relation<Count>> {
    vec![
        Relation::binary_ones(A, B, (0..40u64).map(|i| ((i + shift) % 8, i % 5))),
        Relation::binary_ones(B, C, (0..40u64).map(|i| (i % 5, i % 6))),
        Relation::binary_ones(C, D, (0..40u64).map(|i| (i % 6, (i + shift) % 9))),
    ]
}

/// The reuse contract for one run: output rows (canonical order,
/// annotations included) and the exact cost ledger match a fresh
/// engine's run of the same request.
fn assert_identical<S: Semiring + std::fmt::Debug>(
    reused: &ExecutionResult<S>,
    fresh: &ExecutionResult<S>,
    what: &str,
) {
    assert_eq!(reused.plan, fresh.plan, "{what}: plan drifted");
    assert_eq!(reused.cost, fresh.cost, "{what}: cost ledger drifted");
    assert_eq!(
        reused.output.canonical(),
        fresh.output.canonical(),
        "{what}: output drifted"
    );
    assert_eq!(
        reused.output_skew, fresh.output_skew,
        "{what}: placement skew drifted"
    );
}

#[test]
fn interleaved_reuse_is_bit_identical_to_fresh_engines() {
    let engine = QueryEngine::new(8);
    let mm = mm_query();
    let line = line_query();
    // Interleave queries and instances on ONE engine; after each run,
    // compare against a brand-new engine. Round 2 repeats round 0's
    // requests, so any state planted by rounds 0–1 would surface.
    for round in 0..3u64 {
        let shift = round % 2;
        let mm_rels = mm_instance(shift);
        let line_rels = line_instance(shift);
        let r1 = engine.run(&mm, &mm_rels).unwrap();
        let f1 = QueryEngine::new(8).run(&mm, &mm_rels).unwrap();
        assert_identical(&r1, &f1, &format!("round {round}: matmul"));
        let r2 = engine.run(&line, &line_rels).unwrap();
        let f2 = QueryEngine::new(8).run(&line, &line_rels).unwrap();
        assert_identical(&r2, &f2, &format!("round {round}: line"));
    }
}

#[test]
fn reuse_across_semirings_does_not_leak() {
    // The serving layer runs different semirings through engines pooled
    // by configuration only; `run` is generic per call, so semiring type
    // state cannot live in the engine — pin it anyway.
    let engine = QueryEngine::new(6);
    let q = mm_query();
    let count_rels = mm_instance(0);
    let bool_rels: Vec<Relation<BoolRing>> = vec![
        Relation::binary_ones(A, B, (0..60u64).map(|i| (i % 12, i % 7))),
        Relation::binary_ones(B, C, (0..60u64).map(|i| (i % 7, i % 11))),
    ];
    let before = engine.run(&q, &count_rels).unwrap();
    let _ = engine.run(&q, &bool_rels).unwrap();
    let after = engine.run(&q, &count_rels).unwrap();
    assert_identical(&after, &before, "count run after bool interleave");
}

#[test]
fn reuse_survives_error_paths() {
    // A failed run (invalid instance, unsupported plan) must leave the
    // engine exactly as it was.
    let engine = QueryEngine::new(8);
    let q = mm_query();
    let rels = mm_instance(0);
    let before = engine.run(&q, &rels).unwrap();
    let err = engine.run(&q, &rels[..1]).unwrap_err();
    assert!(matches!(err, MpcError::InvalidInstance(_)));
    let forced = QueryEngine::new(8).plan(PlanChoice::Force(PlanKind::Star));
    assert!(forced.run(&q, &rels).is_err());
    let after = engine.run(&q, &rels).unwrap();
    assert_identical(&after, &before, "run after error paths");
}

#[test]
fn faulted_engine_reuse_stays_clean() {
    // An engine carrying a fault plan replays the SAME deterministic
    // schedule every run (the plan seeds a fresh RNG per cluster), and a
    // fault-free engine derived from the same base stays untouched.
    let q = mm_query();
    let rels = mm_instance(0);
    let clean_engine = QueryEngine::new(8);
    let clean = clean_engine.run(&q, &rels).unwrap();
    let faulted_engine =
        QueryEngine::new(8).faults(FaultPlan::new(11).retries(10).drop_window(0, 4, 0.3));
    let first = faulted_engine.run(&q, &rels).unwrap();
    let second = faulted_engine.run(&q, &rels).unwrap();
    assert_identical(&first, &second, "faulted engine reused");
    assert_eq!(
        first
            .recovery
            .as_ref()
            .map(|r| r.to_json().to_string_sanitized()),
        second
            .recovery
            .as_ref()
            .map(|r| r.to_json().to_string_sanitized()),
        "fault schedule must replay identically on reuse"
    );
    assert_identical(&first, &clean, "faulted vs clean output/ledger");
    // And the clean engine is unaffected by the faulted one's runs.
    let clean_after = clean_engine.run(&q, &rels).unwrap();
    assert_identical(&clean_after, &clean, "clean engine after faulted runs");
    assert!(clean_after.recovery.is_none());
}

#[test]
fn server_executor_reuse_matches_fresh_executors() {
    // The serving layer's actual reuse path: one Executor (pooled
    // engines + cache) answering a request repeatedly, compared against
    // a fresh Executor per request. Bodies are serialized bytes, so
    // equality here is bit-identity.
    use mpcjoin_server::run::Executor;
    use mpcjoin_server::wire::{parse_frame, Frame, ResponseView};

    let line = "{\"type\":\"query\",\"id\":1,\"query\":\"Q(a, c) :- R(a, b), S(b, c)\",\
                \"servers\":4,\"semiring\":\"count\",\
                \"relations\":{\"R\":[[1,10],[1,11],[2,10],[3,12]],\"S\":[[10,7],[11,7],[12,9]]}}";
    let Frame::Query(req) = parse_frame(line).unwrap() else {
        panic!("expected a query frame");
    };
    let shared = Executor::new(
        64,
        1,
        16,
        None,
        std::sync::Arc::new(mpcjoin_server::Obs::new()),
    );
    let mut bodies = Vec::new();
    for i in 0..4 {
        let view = ResponseView::parse(&shared.execute(&req)).unwrap();
        assert_eq!(view.kind, "result");
        assert_eq!(view.cached, i > 0, "first run cold, repeats cached");
        bodies.push(view.result.unwrap());
        let fresh = Executor::new(
            64,
            1,
            16,
            None,
            std::sync::Arc::new(mpcjoin_server::Obs::new()),
        );
        let fresh_view = ResponseView::parse(&fresh.execute(&req)).unwrap();
        assert_eq!(
            fresh_view.result.as_deref(),
            bodies.last().map(String::as_str),
            "reused executor must match a fresh one"
        );
    }
    assert!(bodies.windows(2).all(|w| w[0] == w[1]));
}

//! Observability-plane integration: a golden snapshot of the
//! `mpcjoin-serverstats-v1` schema, the operational-log round-trip
//! (write → validate → cross-check), the text exposition, and the
//! request-id echo on response frames.
//!
//! The schema snapshot pins the *shape* of the stats payload — every
//! member path and leaf type, with volatile values erased — so adding,
//! renaming, or removing a field shows up in review as a readable diff
//! of `results/SERVERSTATS_schema.txt` (regenerate with
//! `MPCJOIN_BLESS=1`).

use mpcjoin::mpc::json::Json;
use mpcjoin_server::obs::{check_log, cross_check, StatsView};
use mpcjoin_server::wire::{parse_frame, stamp_rid, Frame, ResponseView};
use mpcjoin_server::{Scheduler, ServerConfig};
use std::path::PathBuf;
use std::sync::mpsc;

fn query_request(id: u64, session: &str) -> mpcjoin_server::wire::QueryRequest {
    let line = format!(
        "{{\"type\":\"query\",\"id\":{id},\"session\":\"{session}\",\
         \"query\":\"Q(a, c) :- R(a, b), S(b, c)\",\"servers\":4,\
         \"relations\":{{\"R\":[[1,10],[1,11],[2,10]],\"S\":[[10,7],[11,7]]}}}}"
    );
    match parse_frame(&line).expect("frame parses") {
        Frame::Query(req) => *req,
        other => panic!("expected query frame, got {other:?}"),
    }
}

/// Submit one request and block for its single response frame.
fn submit_and_wait(sched: &Scheduler, rid: u64, req: mpcjoin_server::wire::QueryRequest) -> String {
    let (tx, rx) = mpsc::channel::<String>();
    sched.submit(rid, req, move |f| tx.send(f).expect("collector alive"));
    rx.recv().expect("exactly one response")
}

/// Run the fixed mini-workload every test here shares: a cold query, a
/// cache hit, and an executor error (missing relation).
fn mini_workload(sched: &Scheduler) {
    let cold = ResponseView::parse(&submit_and_wait(sched, 1, query_request(1, "w"))).unwrap();
    assert_eq!(cold.kind, "result", "{:?}", cold.detail);
    let hit = ResponseView::parse(&submit_and_wait(sched, 2, query_request(2, "w"))).unwrap();
    assert!(hit.cached);
    let mut bad = query_request(3, "w");
    bad.relations.pop();
    let err = ResponseView::parse(&submit_and_wait(sched, 3, bad)).unwrap();
    assert_eq!(err.code.as_deref(), Some("bad_request"));
}

/// Flatten a JSON document into sorted `path: type` lines. Object keys
/// are kept (they are part of the schema — counter names, phase names,
/// plan kinds for the fixed workload are all deterministic); values are
/// erased to their type; arrays descend into their first element only,
/// so histogram bucket counts don't leak in.
fn schema_lines(doc: &Json, path: &str, out: &mut Vec<String>) {
    match doc {
        Json::Obj(members) => {
            for (k, v) in members {
                schema_lines(v, &format!("{path}.{k}"), out);
            }
        }
        Json::Arr(items) => match items.first() {
            None => out.push(format!("{path}[]: (empty)")),
            Some(first) => schema_lines(first, &format!("{path}[]"), out),
        },
        Json::Num(_) => out.push(format!("{path}: num")),
        Json::Str(_) => out.push(format!("{path}: str")),
        Json::Bool(_) => out.push(format!("{path}: bool")),
        Json::Null => out.push(format!("{path}: null")),
    }
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mpcjoin_obs_{}_{name}", std::process::id()))
}

#[test]
fn golden_serverstats_schema() {
    let sched = Scheduler::new(ServerConfig::default());
    mini_workload(&sched);
    sched.drain();
    let doc = sched.stats_doc();
    sched.shutdown();

    let mut lines = Vec::new();
    schema_lines(&doc, "", &mut lines);
    lines.sort();
    let fresh = lines.join("\n") + "\n";

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("results")
        .join("SERVERSTATS_schema.txt");
    if std::env::var_os("MPCJOIN_BLESS").is_some() {
        std::fs::write(&path, &fresh).expect("write snapshot");
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); run with MPCJOIN_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        fresh, committed,
        "mpcjoin-serverstats-v1 shape drifted from the committed snapshot; \
         regenerate with MPCJOIN_BLESS=1 if intentional"
    );
}

#[test]
fn operational_log_round_trips_and_cross_checks() {
    let log_path = tmp("roundtrip.jsonl");
    let dump_path = tmp("roundtrip_dump.txt");
    let sched = Scheduler::new(ServerConfig {
        log_file: Some(log_path.clone()),
        obs_dump: Some(dump_path.clone()),
        ..ServerConfig::default()
    });
    mini_workload(&sched);
    sched.drain();
    let doc = sched.stats_doc().to_string_sanitized();
    sched.shutdown();

    // The log validates and its event counts match the workload.
    let text = std::fs::read_to_string(&log_path).expect("log written");
    let summary = check_log(&text).expect("log validates");
    assert_eq!(summary.completes_query, 3);
    assert_eq!(summary.completes_cached, 1);
    assert_eq!(summary.completes_error, 1);

    // The same reconciliation obs_check runs in CI holds in-process.
    let stats = StatsView::parse(&doc).expect("stats payload parses");
    let notes = cross_check(&summary, Some(&stats), None).expect("log and stats reconcile");
    assert!(!notes.is_empty());

    // drain() flushed the text exposition, and it is scrape-friendly:
    // every line is `# comment` or `name{...} value`.
    let dump = std::fs::read_to_string(&dump_path).expect("obs dump written");
    assert!(dump.starts_with("# mpcjoin-serverstats-v1"));
    assert!(dump.contains("mpcjoin_queue_depth 0"));
    assert!(dump.contains("mpcjoin_sched{counter=\"completed\"} 3"));
    // Only successful runs record spans, so the error is not in here.
    assert!(dump.contains("mpcjoin_latency_ns{phase=\"total\",stat=\"count\"} 2"));
    for line in dump.lines() {
        assert!(
            line.starts_with('#')
                || line.split_once(' ').is_some_and(
                    |(name, v)| name.starts_with("mpcjoin_") && v.parse::<f64>().is_ok()
                ),
            "unscrapable exposition line: {line}"
        );
    }
    std::fs::remove_file(&log_path).ok();
    std::fs::remove_file(&dump_path).ok();
}

#[test]
fn responses_echo_the_server_request_id() {
    let sched = Scheduler::new(ServerConfig::default());
    // The wire layer stamps every outgoing frame with the rid it
    // allocated; the body must be untouched by the stamp.
    let frame = submit_and_wait(&sched, 77, query_request(5, "rid"));
    let plain = ResponseView::parse(&frame).unwrap();
    assert_eq!(plain.rid, None, "executor frames carry no rid yet");
    let stamped = stamp_rid(&frame, 77);
    let view = ResponseView::parse(&stamped).unwrap();
    assert_eq!(view.rid, Some(77), "rid echoed on the stamped frame");
    assert_eq!(view.id, plain.id);
    assert_eq!(view.result, plain.result, "stamping never alters the body");
    sched.shutdown();
}

//! Adversarial-input fuzzing for `mpcjoin::mpc::json`.
//!
//! The JSON parser sits on the serving layer's wire boundary
//! (`mpcjoin-serve` feeds it raw bytes from untrusted clients), so the
//! contract is strict: `Json::parse` must never panic on *any* input,
//! and every rejection must carry the byte offset of the problem so
//! protocol errors are actionable. These tests drive the parser with
//! seeded deterministic fuzz (the in-tree `DetRng`, no third-party fuzz
//! framework): truncations and single-byte corruptions of valid
//! documents, plus unstructured byte soup.

use mpcjoin::mpc::json::Json;
use mpcjoin::mpc::DetRng;

/// Deterministically generate a random (valid) JSON document.
fn gen_value(rng: &mut DetRng, depth: usize) -> Json {
    let pick = if depth >= 3 {
        rng.gen_range(0u32..4) // leaves only
    } else {
        rng.gen_range(0u32..6)
    };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_bool(0.5)),
        2 => {
            // Mix of integers, negatives, and fractions.
            let n = rng.gen_range(0u64..1_000_000) as f64;
            match rng.gen_range(0u32..3) {
                0 => Json::Num(n),
                1 => Json::Num(-n),
                _ => Json::Num(n / 64.0),
            }
        }
        3 => Json::Str(gen_string(rng)),
        4 => {
            let len = rng.gen_range(0usize..4);
            Json::Arr((0..len).map(|_| gen_value(rng, depth + 1)).collect())
        }
        _ => {
            let len = rng.gen_range(0usize..4);
            Json::Obj(
                (0..len)
                    .map(|_| (gen_string(rng), gen_value(rng, depth + 1)))
                    .collect(),
            )
        }
    }
}

/// Strings exercising escapes, control characters, and multi-byte UTF-8.
fn gen_string(rng: &mut DetRng) -> String {
    const POOL: &[char] = &[
        'a',
        'B',
        '7',
        '_',
        ' ',
        '"',
        '\\',
        '/',
        '\n',
        '\t',
        '\r',
        '\u{0}',
        '\u{1f}',
        'é',
        '日',
        '\u{1F680}',
        '𝕊',
    ];
    let len = rng.gen_range(0usize..8);
    (0..len)
        .map(|_| POOL[rng.gen_range(0usize..POOL.len())])
        .collect()
}

/// The hardening contract for one adversarial input: parsing must return
/// (never panic), and any error must name a byte offset.
fn assert_hardened(input: &str) {
    if let Err(msg) = Json::parse(input) {
        assert!(
            msg.contains("byte "),
            "error without a byte offset for {input:?}: {msg}"
        );
    }
}

#[test]
fn truncated_documents_never_panic_and_report_offsets() {
    let mut rng = DetRng::seed_from_u64(0xA11CE);
    for round in 0..200 {
        let doc = gen_value(&mut rng, 0);
        let text = doc.to_string_compact().expect("generated docs are finite");
        // Every char-boundary prefix of a valid document.
        for (cut, _) in text.char_indices() {
            let prefix = &text[..cut];
            if prefix == text {
                continue;
            }
            if let Ok(parsed) = Json::parse(prefix) {
                // A strict prefix may still be valid JSON only when the
                // document is a number whose prefix is a shorter number
                // (e.g. `12|3`); anything structured must be rejected.
                assert!(
                    matches!(parsed, Json::Num(_)),
                    "round {round}: structured prefix {prefix:?} of {text:?} parsed"
                );
            } else {
                assert_hardened(prefix);
            }
        }
    }
}

#[test]
fn corrupted_documents_never_panic_and_report_offsets() {
    let mut rng = DetRng::seed_from_u64(0xC0FFEE);
    for _ in 0..500 {
        let doc = gen_value(&mut rng, 0);
        let text = doc.to_string_compact().expect("finite");
        if text.is_empty() {
            continue;
        }
        let mut bytes = text.clone().into_bytes();
        // Corrupt 1–3 bytes with arbitrary values (possibly invalid
        // UTF-8; the parser's entry point takes &str, so re-validate and
        // skip non-UTF-8 mutations — the wire layer rejects those before
        // the parser ever sees them).
        for _ in 0..rng.gen_range(1usize..4) {
            let at = rng.gen_range(0usize..bytes.len());
            bytes[at] = (rng.next_u64() & 0xff) as u8;
        }
        if let Ok(mutated) = String::from_utf8(bytes) {
            assert_hardened(&mutated);
        }
    }
}

#[test]
fn byte_soup_never_panics() {
    let mut rng = DetRng::seed_from_u64(0x5EED);
    for _ in 0..500 {
        let len = rng.gen_range(0usize..64);
        let soup: String = (0..len)
            .map(|_| {
                // Bias toward JSON-significant characters so the fuzzer
                // reaches deep parser states, with printable ASCII noise.
                const SIG: &[u8] = b"{}[]\",:\\-0123456789.eEtrufalsn";
                if rng.gen_bool(0.7) {
                    SIG[rng.gen_range(0usize..SIG.len())] as char
                } else {
                    char::from_u32(rng.gen_range(0x20u32..0x7f)).unwrap()
                }
            })
            .collect();
        assert_hardened(&soup);
    }
}

#[test]
fn known_truncations_name_the_right_offset() {
    // Pin offsets for a few hand-built frames so the "byte offset" claim
    // is not merely "some number appears in the message".
    let cases: [(&str, &str); 5] = [
        ("", "byte 0"),
        ("{\"k\": ", "byte 6"),
        ("[1, 2", "byte 5"),
        ("{\"k\" 1}", "byte 5"),
        ("\"abc", "byte 0"), // unterminated string: offset of its opening quote
    ];
    for (input, expected) in cases {
        let err = Json::parse(input).expect_err(input);
        assert!(
            err.contains(expected),
            "{input:?}: expected {expected:?} in {err:?}"
        );
    }
}

#[test]
fn valid_documents_still_round_trip_after_hardening() {
    // The fuzz hardening must not have changed the accepted language:
    // generated documents round-trip bit-exactly.
    let mut rng = DetRng::seed_from_u64(42);
    for _ in 0..200 {
        let doc = gen_value(&mut rng, 0);
        let text = doc.to_string_compact().expect("finite");
        let back = Json::parse(&text).expect("valid doc parses");
        assert_eq!(back.to_string_compact().expect("finite"), text);
    }
}

//! Planner coverage: every [`PlanKind`] is reachable and correct,
//! including through the named-attribute builder API.

use mpcjoin::prelude::*;
use mpcjoin::query::QueryBuilder;
use mpcjoin::{execute_sequential, PlanKind, QueryEngine};

#[test]
fn star_like_plan_selected_and_correct() {
    // Center with one two-hop arm and two one-hop arms.
    let b = Attr(9);
    let mid = Attr(10);
    let q = TreeQuery::new(
        vec![
            Edge::binary(b, Attr(0)),
            Edge::binary(b, mid),
            Edge::binary(mid, Attr(1)),
            Edge::binary(b, Attr(2)),
        ],
        [Attr(0), Attr(1), Attr(2)],
    );
    let rels = vec![
        Relation::<Count>::binary_ones(b, Attr(0), (0..24u64).map(|i| (i % 4, i % 7))),
        Relation::<Count>::binary_ones(b, mid, (0..24u64).map(|i| (i % 4, i % 5))),
        Relation::<Count>::binary_ones(mid, Attr(1), (0..24u64).map(|i| (i % 5, i % 6))),
        Relation::<Count>::binary_ones(b, Attr(2), (0..24u64).map(|i| (i % 4, i % 3))),
    ];
    let result = QueryEngine::new(8).run(&q, &rels).unwrap();
    assert_eq!(result.plan, PlanKind::StarLike);
    assert!(result
        .output
        .semantically_eq(&execute_sequential(&q, &rels)));
}

#[test]
fn tree_plan_for_internal_outputs() {
    let q = TreeQuery::new(
        vec![
            Edge::binary(Attr(0), Attr(1)),
            Edge::binary(Attr(1), Attr(2)),
            Edge::binary(Attr(2), Attr(3)),
            Edge::binary(Attr(3), Attr(4)),
        ],
        [Attr(0), Attr(2), Attr(4)],
    );
    let rels: Vec<Relation<Count>> = (0..4)
        .map(|j| {
            Relation::binary_ones(
                Attr(j),
                Attr(j + 1),
                (0..20u64).map(move |i| ((i * (j as u64 + 2)) % 6, (i * 3) % 6)),
            )
        })
        .collect();
    let result = QueryEngine::new(8).run(&q, &rels).unwrap();
    assert_eq!(result.plan, PlanKind::Tree);
    assert!(result
        .output
        .semantically_eq(&execute_sequential(&q, &rels)));
}

#[test]
fn builder_to_execution_pipeline() {
    // A social query by name: mutual-communities of user pairs.
    let (q, names) = QueryBuilder::new()
        .relation("user", "community")
        .relation("community", "topic")
        .output(["user", "topic"])
        .build();
    let user = names.attr("user").expect("interned");
    let community = names.attr("community").expect("interned");
    let topic = names.attr("topic").expect("interned");
    let rels = vec![
        Relation::<BoolRing>::binary_ones(user, community, (0..40u64).map(|i| (i % 10, i % 4))),
        Relation::<BoolRing>::binary_ones(community, topic, (0..40u64).map(|i| (i % 4, i % 9))),
    ];
    let result = QueryEngine::new(8).run(&q, &rels).unwrap();
    assert_eq!(result.plan, PlanKind::MatMul);
    assert!(result
        .output
        .semantically_eq(&execute_sequential(&q, &rels)));
    // DOT rendering names the attributes.
    let dot = mpcjoin::query::to_dot(&q, Some(&names));
    assert!(dot.contains("\"user\" [shape=doublecircle]"));
    assert!(dot.contains("\"community\";"));
}

#[test]
fn single_server_cluster_end_to_end() {
    // p = 1: everything is local; algorithms must still be correct.
    let q = TreeQuery::new(
        vec![
            Edge::binary(Attr(0), Attr(1)),
            Edge::binary(Attr(1), Attr(2)),
        ],
        [Attr(0), Attr(2)],
    );
    let rels = vec![
        Relation::<Count>::binary_ones(Attr(0), Attr(1), (0..30u64).map(|i| (i % 6, i % 5))),
        Relation::<Count>::binary_ones(Attr(1), Attr(2), (0..30u64).map(|i| (i % 5, i % 7))),
    ];
    let result = QueryEngine::new(1).run(&q, &rels).unwrap();
    assert!(result
        .output
        .semantically_eq(&execute_sequential(&q, &rels)));
}

#[test]
fn empty_relations_everywhere() {
    let q = TreeQuery::new(
        vec![
            Edge::binary(Attr(0), Attr(1)),
            Edge::binary(Attr(1), Attr(2)),
        ],
        [Attr(0), Attr(2)],
    );
    let rels = vec![
        Relation::<Count>::empty(Schema::binary(Attr(0), Attr(1))),
        Relation::<Count>::empty(Schema::binary(Attr(1), Attr(2))),
    ];
    let result = QueryEngine::new(4).run(&q, &rels).unwrap();
    assert!(result.output.is_empty());
}

#[test]
fn unary_filter_relation_folds_in() {
    // A weighted unary "dimension" relation on A acts as a filter +
    // per-key weight; the §7 reduce step folds it into R(A,B).
    let (a, b, c) = (Attr(0), Attr(1), Attr(2));
    let q = TreeQuery::new(
        vec![Edge::binary(a, b), Edge::binary(b, c), Edge::unary(a)],
        [a, c],
    );
    let filter = Relation::<Count>::from_entries(
        Schema::unary(a),
        vec![(vec![1], Count(10)), (vec![3], Count(1))],
    );
    let rels = vec![
        Relation::<Count>::binary_ones(a, b, [(1, 5), (2, 5), (3, 6)]),
        Relation::<Count>::binary_ones(b, c, [(5, 7), (6, 8)]),
        filter,
    ];
    let result = QueryEngine::new(4).run(&q, &rels).unwrap();
    let oracle = execute_sequential(&q, &rels);
    assert!(result.output.semantically_eq(&oracle));
    // a=2 is filtered out; a=1 carries weight 10.
    assert_eq!(
        oracle.canonical(),
        vec![(vec![1, 7], Count(10)), (vec![3, 8], Count(1))]
    );
}

#[test]
fn plan_loads_are_deterministic() {
    // Two identical runs must report identical costs (the simulator is
    // fully deterministic).
    let q = TreeQuery::new(
        vec![
            Edge::binary(Attr(0), Attr(1)),
            Edge::binary(Attr(1), Attr(2)),
        ],
        [Attr(0), Attr(2)],
    );
    let rels = vec![
        Relation::<Count>::binary_ones(Attr(0), Attr(1), (0..200u64).map(|i| (i % 40, i % 13))),
        Relation::<Count>::binary_ones(Attr(1), Attr(2), (0..200u64).map(|i| (i % 13, i % 31))),
    ];
    let r1 = QueryEngine::new(8).run(&q, &rels).unwrap();
    let r2 = QueryEngine::new(8).run(&q, &rels).unwrap();
    assert_eq!(r1.cost, r2.cost);
    assert!(r1.output.semantically_eq(&r2.output));
}

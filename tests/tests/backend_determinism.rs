//! The determinism contract of the execution backends: running the same
//! query on the serial backend and on thread pools of any size must
//! produce identical output relations AND identical measured costs
//! (load, rounds, total traffic). Local computation is free in the MPC
//! cost model, so parallelizing it can only change the wall clock.

use mpcjoin::prelude::*;
use mpcjoin::workload::{rng, trees};
use mpcjoin::{execute_sequential, QueryEngine};

const A: Attr = Attr(0);
const B: Attr = Attr(1);
const C: Attr = Attr(2);

fn matmul_instance() -> (TreeQuery, Vec<Relation<Count>>) {
    let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C]);
    // Mixed skew: one heavy row plus a uniform fringe, so the run
    // exercises the heavy/light split and the packing machinery.
    let mut p1: Vec<(u64, u64)> = (0..60u64).map(|b| (999, b)).collect();
    p1.extend((0..400u64).map(|i| (i % 80, (i * 7) % 60)));
    let r2: Vec<(u64, u64)> = (0..800u64).map(|i| (i % 60, i % 97)).collect();
    let rels = vec![
        Relation::binary_ones(A, B, p1),
        Relation::binary_ones(B, C, r2),
    ];
    (q, rels)
}

fn tree_instance() -> (TreeQuery, Vec<Relation<Count>>) {
    let q = trees::figure2_query();
    let inst = trees::random_instance::<Count>(&mut rng(7), &q, 10, 3);
    (inst.query, inst.rels)
}

fn assert_backend_invariant(q: &TreeQuery, rels: &[Relation<Count>]) {
    let baseline = QueryEngine::new(8).run(q, rels).unwrap();
    let oracle = execute_sequential(q, rels);
    assert!(
        baseline.output.semantically_eq(&oracle),
        "default run diverged from the sequential oracle"
    );
    for threads in [1usize, 2, 8] {
        let run = QueryEngine::new(8).threads(threads).run(q, rels).unwrap();
        // Identical output tuples (canonical entry order after gather).
        assert_eq!(
            run.output.entries(),
            baseline.output.entries(),
            "output differs between serial and {threads}-thread backends"
        );
        // Identical measured cost: CostReport equality covers load,
        // rounds and total_units (wall clock is deliberately excluded).
        assert_eq!(
            run.cost, baseline.cost,
            "measured cost differs at {threads} threads"
        );
        assert_eq!(run.plan, baseline.plan);
        assert!((run.output_skew - baseline.output_skew).abs() < 1e-12);
    }
}

#[test]
fn matmul_deterministic_across_backends() {
    let (q, rels) = matmul_instance();
    assert_backend_invariant(&q, &rels);
}

#[test]
fn tree_query_deterministic_across_backends() {
    let (q, rels) = tree_instance();
    assert_backend_invariant(&q, &rels);
}

/// Wall-clock smoke test (ignored by default: timing-sensitive). On a
/// multi-core machine the threaded run should not be slower than serial
/// on a large instance; prints the observed speedup.
///
/// Run with: `cargo test -q --test backend_determinism -- --ignored`
#[test]
#[ignore = "timing-sensitive; run explicitly on a quiet multi-core machine"]
fn thread_pool_speeds_up_large_matmul() {
    let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C]);
    let n = 60_000u64;
    let rels = vec![
        Relation::<Count>::binary_ones(A, B, (0..n).map(|i| (i % 6000, (i * 7) % 300))),
        Relation::<Count>::binary_ones(B, C, (0..n).map(|i| ((i * 3) % 300, i % 5000))),
    ];

    let serial = QueryEngine::new(16).threads(1).run(&q, &rels).unwrap();
    let threads = mpcjoin::mpc::exec::available_threads();
    let parallel = QueryEngine::new(16)
        .threads(threads)
        .run(&q, &rels)
        .unwrap();

    assert_eq!(serial.output.entries(), parallel.output.entries());
    assert_eq!(serial.cost, parallel.cost);
    let speedup = serial.cost.elapsed.as_secs_f64() / parallel.cost.elapsed.as_secs_f64().max(1e-9);
    println!(
        "serial {:.3?} vs {} threads {:.3?} — speedup {speedup:.2}x",
        serial.cost.elapsed, threads, parallel.cost.elapsed
    );
    assert!(
        parallel.cost.elapsed <= serial.cost.elapsed.mul_f64(1.10),
        "threaded run slower than serial: {:?} vs {:?}",
        parallel.cost.elapsed,
        serial.cost.elapsed
    );
}

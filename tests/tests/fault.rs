//! The fault plane through the full engine: for every plan the engine
//! can choose, a run under injected faults (drops, duplicates, reorders,
//! crashes, stragglers, compute faults) must recover to the *same*
//! output and the *same* cost ledger as the fault-free run — faults are
//! visible only in wall-clock time and in the recovery report. A
//! schedule the retry policy cannot absorb surfaces as a structured
//! [`MpcError::Unrecoverable`], never a panic.

use mpcjoin::prelude::*;
use mpcjoin::{PlanKind, QueryEngine};
use std::time::Duration;

const A: Attr = Attr(0);
const B: Attr = Attr(1);
const C: Attr = Attr(2);
const D: Attr = Attr(3);

/// A schedule exercising every fault kind over the run's early rounds.
fn mixed_plan(seed: u64) -> FaultPlan {
    // Drop probability and retry budget are chosen so exhausting the
    // budget is vanishingly unlikely (≈0.3¹¹ per message): the
    // recoverable-schedule tests stay deterministic-by-seed without
    // sitting near the unrecoverable cliff.
    FaultPlan::new(seed)
        .retries(10)
        .drop_window(0, 3, 0.3)
        .duplicate(1, 0.5)
        .reorder(2)
        .crash(3, 5)
        .straggle(0, 1, Duration::from_micros(30))
        .compute_fault(1, 2)
}

/// Run `q` fault-free and under `plan`; the faulted run must land on the
/// same output and ledger, with a recovery report telling a non-empty
/// story. Returns the faulted run.
fn assert_recovery_equivalent<S: Semiring>(
    p: usize,
    q: &TreeQuery,
    rels: &[Relation<S>],
    plan: FaultPlan,
    expect: PlanKind,
) -> ExecutionResult<S> {
    let clean = QueryEngine::new(p).run(q, rels).expect("valid instance");
    assert_eq!(clean.plan, expect);
    assert!(clean.recovery.is_none(), "no plan installed, no report");
    let faulted = QueryEngine::new(p)
        .faults(plan)
        .run(q, rels)
        .expect("this schedule is recoverable under its retry policy");
    assert_eq!(faulted.plan, expect);
    assert_eq!(
        clean.cost, faulted.cost,
        "{expect:?}: recovery must be invisible in the ledger"
    );
    assert!(
        clean.output.semantically_eq(&faulted.output),
        "{expect:?}: recovery must be invisible in the output"
    );
    assert_eq!(clean.audit, faulted.audit, "{expect:?}");
    let report = faulted.recovery.as_ref().expect("fault plan installed");
    assert!(report.recovered(), "{expect:?}: {report}");
    faulted
}

/// One (query, instance) per [`PlanKind`], generic over the semiring.
fn workloads<S: Semiring>() -> Vec<(PlanKind, TreeQuery, Vec<Relation<S>>)> {
    let mm = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C]);
    let mm_rels = vec![
        Relation::binary_ones(A, B, (0..60u64).map(|i| (i % 12, i % 7))),
        Relation::binary_ones(B, C, (0..60u64).map(|i| (i % 7, i % 11))),
    ];
    let fc = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, B, C]);
    let line = TreeQuery::new(
        vec![Edge::binary(A, B), Edge::binary(B, C), Edge::binary(C, D)],
        [A, D],
    );
    let line_rels = vec![
        Relation::binary_ones(A, B, (0..40u64).map(|i| (i % 8, i % 5))),
        Relation::binary_ones(B, C, (0..40u64).map(|i| (i % 5, i % 6))),
        Relation::binary_ones(C, D, (0..40u64).map(|i| (i % 6, i % 9))),
    ];
    let star = TreeQuery::new(
        vec![Edge::binary(A, D), Edge::binary(B, D), Edge::binary(C, D)],
        [A, B, C],
    );
    let star_rels = vec![
        Relation::binary_ones(A, D, (0..24u64).map(|i| (i % 6, i % 3))),
        Relation::binary_ones(B, D, (0..24u64).map(|i| (i % 5, i % 3))),
        Relation::binary_ones(C, D, (0..24u64).map(|i| (i % 4, i % 3))),
    ];
    let (hub, mid) = (Attr(9), Attr(10));
    let star_like = TreeQuery::new(
        vec![
            Edge::binary(hub, A),
            Edge::binary(hub, mid),
            Edge::binary(mid, B),
            Edge::binary(hub, C),
        ],
        [A, B, C],
    );
    let star_like_rels = vec![
        Relation::binary_ones(hub, A, (0..24u64).map(|i| (i % 4, i % 7))),
        Relation::binary_ones(hub, mid, (0..24u64).map(|i| (i % 4, i % 5))),
        Relation::binary_ones(mid, B, (0..24u64).map(|i| (i % 5, i % 6))),
        Relation::binary_ones(hub, C, (0..24u64).map(|i| (i % 4, i % 3))),
    ];
    let tree = TreeQuery::new(
        vec![
            Edge::binary(Attr(0), Attr(1)),
            Edge::binary(Attr(1), Attr(2)),
            Edge::binary(Attr(2), Attr(3)),
            Edge::binary(Attr(3), Attr(4)),
        ],
        [Attr(0), Attr(2), Attr(4)],
    );
    let tree_rels = (0..4)
        .map(|j| {
            Relation::binary_ones(
                Attr(j),
                Attr(j + 1),
                (0..20u64).map(move |i| ((i * (u64::from(j) + 2)) % 6, (i * 3) % 6)),
            )
        })
        .collect();
    vec![
        (PlanKind::MatMul, mm, mm_rels.clone()),
        (PlanKind::FreeConnexYannakakis, fc, mm_rels),
        (PlanKind::Line, line, line_rels),
        (PlanKind::Star, star, star_rels),
        (PlanKind::StarLike, star_like, star_like_rels),
        (PlanKind::Tree, tree, tree_rels),
    ]
}

#[test]
fn every_plan_recovers_bit_identically_under_count() {
    for (i, (kind, q, rels)) in workloads::<Count>().into_iter().enumerate() {
        assert_recovery_equivalent(8, &q, &rels, mixed_plan(40 + i as u64), kind);
    }
}

#[test]
fn every_plan_recovers_bit_identically_under_tropical_min() {
    for (i, (kind, q, rels)) in workloads::<TropicalMin>().into_iter().enumerate() {
        assert_recovery_equivalent(8, &q, &rels, mixed_plan(90 + i as u64), kind);
    }
}

#[test]
fn recovery_story_is_deterministic_per_seed() {
    let (kind, q, rels) = workloads::<Count>().swap_remove(2);
    let a = assert_recovery_equivalent(8, &q, &rels, mixed_plan(7), kind);
    let b = assert_recovery_equivalent(8, &q, &rels, mixed_plan(7), kind);
    assert_eq!(
        a.recovery, b.recovery,
        "same seed, same schedule, same recovery story"
    );
    let c = assert_recovery_equivalent(8, &q, &rels, mixed_plan(8), kind);
    // A different seed may tell a different story — but never a
    // different ledger (already asserted inside the helper).
    assert_eq!(a.cost, c.cost);
}

#[test]
fn an_installed_but_silent_plan_is_fully_invisible() {
    // A plan whose schedule never fires: the run must be bit-identical
    // to the fault-free run — ledger, trace events, and metrics — across
    // thread counts. This pins "compiled in but disabled costs nothing".
    let (_, q, rels) = workloads::<Count>().swap_remove(0);
    let silent = FaultPlan::new(3).drop_window(10_000, 10_001, 1.0);
    let clean = QueryEngine::new(8)
        .trace(true)
        .metrics(true)
        .run(&q, &rels)
        .unwrap();
    for threads in [1usize, 4] {
        let armed = QueryEngine::new(8)
            .threads(threads)
            .trace(true)
            .metrics(true)
            .faults(silent.clone())
            .run(&q, &rels)
            .unwrap();
        assert_eq!(clean.cost, armed.cost, "{threads} threads");
        let (ct, at) = (clean.trace.as_ref().unwrap(), armed.trace.as_ref().unwrap());
        assert_eq!(ct.events, at.events, "{threads} threads");
        assert_eq!(ct.phases, at.phases, "{threads} threads");
        assert!(at.recovery.is_empty(), "silent plan records no events");
        let report = armed.recovery.expect("plan installed");
        assert!(report.is_clean(), "{report}");
        let (cm, am) = (
            clean.metrics.as_ref().unwrap(),
            armed.metrics.as_ref().unwrap(),
        );
        assert_eq!(cm.per_server, am.per_server, "{threads} threads");
        assert_eq!(cm.per_primitive, am.per_primitive, "{threads} threads");
        assert!(
            am.counters.iter().all(|(k, _)| !k.starts_with("fault.")),
            "no fault counters when nothing fired"
        );
    }
}

#[test]
fn crash_degrades_to_fewer_servers_and_stays_correct() {
    let (kind, q, rels) = workloads::<Count>().swap_remove(3);
    let faulted = assert_recovery_equivalent(
        8,
        &q,
        &rels,
        FaultPlan::new(1).crash(1, 3).crash(4, 6),
        kind,
    );
    let report = faulted.recovery.expect("plan installed");
    assert_eq!(report.servers_lost, vec![3, 6]);
    assert_eq!(report.rounds_replayed, 2);
}

#[test]
fn unrecoverable_schedule_is_a_structured_error_for_every_plan() {
    for (kind, q, rels) in workloads::<Count>() {
        let hopeless = FaultPlan::new(2).retries(1).drop_window(0, u64::MAX, 1.0);
        let err = QueryEngine::new(8)
            .faults(hopeless)
            .run(&q, &rels)
            .unwrap_err();
        match err {
            MpcError::Unrecoverable { detail, .. } => {
                assert!(detail.contains("undelivered"), "{kind:?}: {detail}");
            }
            other => panic!("{kind:?}: expected Unrecoverable, got {other}"),
        }
    }
}

#[test]
fn degenerate_inputs_survive_hostile_schedules() {
    // Empty inputs, p = 1, and OUT = 0 under crash + certain drops: the
    // plane must skip what cannot fault (no messages, no survivors to
    // rehash to) and recover the rest.
    let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C]);
    let empty = vec![
        Relation::<Count>::binary_ones(A, B, []),
        Relation::<Count>::binary_ones(B, C, []),
    ];
    let r = QueryEngine::new(4)
        .faults(mixed_plan(5))
        .run(&q, &empty)
        .expect("empty exchanges cannot exhaust retries");
    assert_eq!(r.output.len(), 0);
    assert!(r.recovery.expect("plan installed").recovered());

    let single = vec![
        Relation::<Count>::binary_ones(A, B, (0..30u64).map(|i| (i % 6, i % 5))),
        Relation::<Count>::binary_ones(B, C, (0..30u64).map(|i| (i % 5, i % 7))),
    ];
    let clean = QueryEngine::new(1).run(&q, &single).unwrap();
    let crashed = QueryEngine::new(1)
        .faults(
            FaultPlan::new(9)
                .retries(20)
                .crash(0, 0)
                .drop_window(0, 2, 0.4),
        )
        .run(&q, &single)
        .expect("a 1-server cluster ignores the crash and retries the drops");
    assert_eq!(clean.cost, crashed.cost);
    assert!(clean.output.semantically_eq(&crashed.output));
    let report = crashed.recovery.expect("plan installed");
    assert!(report.servers_lost.is_empty(), "no survivor, no crash");
}

#[test]
fn fault_plan_round_trips_through_json_at_the_engine_boundary() {
    let (kind, q, rels) = workloads::<Count>().swap_remove(1);
    let plan = mixed_plan(21);
    let text = plan.to_json().to_string_compact().expect("finite");
    let reparsed = FaultPlan::from_json(&text).expect("own exporter parses");
    assert_eq!(
        reparsed.to_json().to_string_compact().expect("finite"),
        text
    );
    let a = assert_recovery_equivalent(8, &q, &rels, plan, kind);
    let b = assert_recovery_equivalent(8, &q, &rels, reparsed, kind);
    assert_eq!(a.recovery, b.recovery, "round-trip preserves the schedule");
}

#[test]
fn recovered_runs_export_a_v3_trace_with_the_story_embedded() {
    use mpcjoin::mpc::json::Json;
    let (_, q, rels) = workloads::<Count>().swap_remove(2);
    let r = QueryEngine::new(8)
        .trace(true)
        .faults(mixed_plan(13))
        .run(&q, &rels)
        .unwrap();
    let trace = r.trace.as_ref().unwrap();
    assert!(!trace.recovery.is_empty(), "a fired schedule leaves events");
    let doc = Json::parse(&trace.to_json_with(Some(&r.audit.to_json()), r.recovery.as_ref()))
        .expect("valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("mpcjoin-trace-v3")
    );
    let events = doc.get("recovery").and_then(Json::as_arr).unwrap();
    assert_eq!(events.len(), trace.recovery.len());
    let report = doc.get("recovery_report").expect("report member");
    assert_eq!(
        report.get("schema").and_then(Json::as_str),
        Some("mpcjoin-recovery-v1")
    );
    assert_eq!(report.get("recovered"), Some(&Json::Bool(true)));
}
